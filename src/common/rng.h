// Deterministic pseudo-random number generation.
//
// Everything random in the simulation (workload access jitter, device latency noise)
// flows through SplitMix64 so runs are reproducible given a seed. We avoid <random>
// engines because their distributions are not bit-stable across standard libraries.

#ifndef FAASNAP_SRC_COMMON_RNG_H_
#define FAASNAP_SRC_COMMON_RNG_H_

#include <cstdint>

namespace faasnap {

// SplitMix64: tiny, fast, and passes BigCrush when used as a seeder or stream.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next 64 uniformly distributed bits.
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return NextU64() % bound; }

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

  // Derives an independent child stream; used to give each actor its own RNG
  // without correlated sequences.
  Rng Fork() { return Rng(NextU64() ^ 0xa5a5a5a5deadbeefULL); }

 private:
  uint64_t state_;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_COMMON_RNG_H_

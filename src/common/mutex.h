// Annotated mutex primitives: std::mutex/std::condition_variable wrappers that
// carry clang thread-safety capabilities (src/common/thread_annotations.h).
//
// The simulation core is single-threaded, but several structures are shared
// with real OS threads (the native snapshot loader thread records spans and
// publishes its completion status) and the discipline is enforced statically
// for all of them: fields are FAASNAP_GUARDED_BY a Mutex, and the clang CI job
// fails the build on any off-lock access. The uncontended fast path of
// std::mutex (one atomic CAS) is far off every hot path that matters — the
// fault-engine fast path never reaches a locked structure.

#ifndef FAASNAP_SRC_COMMON_MUTEX_H_
#define FAASNAP_SRC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace faasnap {

// A std::mutex with capability annotations. Prefer MutexLock over manual
// Lock/Unlock pairs.
class FAASNAP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FAASNAP_ACQUIRE() { mu_.lock(); }
  void Unlock() FAASNAP_RELEASE() { mu_.unlock(); }
  bool TryLock() FAASNAP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For CondVar only; bypasses the analysis.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock holder, annotated so the analysis tracks its scope.
class FAASNAP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FAASNAP_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() FAASNAP_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable usable with Mutex. Wait releases and reacquires `mu`,
// which the analysis cannot model, so callers keep the REQUIRES annotation on
// their own scope and Wait itself is unchecked.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) FAASNAP_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // caller still owns the mutex
  }
  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_COMMON_MUTEX_H_

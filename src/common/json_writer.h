// Minimal dependency-free streaming JSON emission.
//
// Lives in common (rather than metrics) so low-level subsystems — notably the
// observability layer's trace and metrics exporters — can emit JSON without
// depending on the report types. metrics/json_writer.h re-exports this and adds
// InvocationReport serialization on top.

#ifndef FAASNAP_SRC_COMMON_JSON_WRITER_H_
#define FAASNAP_SRC_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/units.h"

namespace faasnap {

// Streaming JSON writer with explicit object/array scopes. Keys and string values
// are escaped; numbers are emitted with enough precision to round-trip.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Emits the key for the next value (valid only inside an object).
  JsonWriter& Key(const std::string& key);

  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(double v);
  JsonWriter& Value(bool v);
  // Strong unit types serialize as their base unit (bytes / pages / ns), so a
  // field's JSON representation never changes when its C++ type is migrated
  // from a raw integer to the unit-safe wrapper.
  JsonWriter& Value(ByteCount v) { return Value(v.value()); }
  JsonWriter& Value(PageCount v) { return Value(v.value()); }
  JsonWriter& Value(Duration v) { return Value(v.nanos()); }
  JsonWriter& Value(SimTime v) { return Value(v.nanos()); }

  // Convenience: Key(k) + Value(v).
  template <typename T>
  JsonWriter& Field(const std::string& key, const T& v) {
    Key(key);
    return Value(v);
  }

  // The finished document. Aborts if scopes are unbalanced.
  std::string TakeString();

 private:
  void MaybeComma();
  void Raw(const std::string& s);

  std::string out_;
  std::vector<bool> needs_comma_;  // per open scope
  bool pending_key_ = false;
};

// Escapes a string for embedding in JSON (without surrounding quotes).
std::string JsonEscape(const std::string& s);

}  // namespace faasnap

#endif  // FAASNAP_SRC_COMMON_JSON_WRITER_H_

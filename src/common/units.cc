#include "src/common/units.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace faasnap {

namespace unit_internal {

void OverflowPanic(const char* what) {
  std::fprintf(stderr, "faasnap: unit arithmetic overflow in %s\n", what);
  std::fflush(stderr);
  std::abort();
}

}  // namespace unit_internal

namespace {

std::string FormatScaled(double value, const char* unit) {
  char buf[64];
  if (value >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, unit);
  } else if (value >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, unit);
  }
  return buf;
}

}  // namespace

std::string FormatBytes(uint64_t bytes) {
  if (bytes >= kGiB) {
    return FormatScaled(static_cast<double>(bytes) / static_cast<double>(kGiB), "GiB");
  }
  if (bytes >= kMiB) {
    return FormatScaled(static_cast<double>(bytes) / static_cast<double>(kMiB), "MiB");
  }
  if (bytes >= kKiB) {
    return FormatScaled(static_cast<double>(bytes) / static_cast<double>(kKiB), "KiB");
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  return buf;
}

std::string PageCount::ToString() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 " pages (%s)", pages_,
                FormatBytes(pages_ * kPageSize).c_str());
  return buf;
}

std::string FormatDuration(int64_t ns) {
  const bool neg = ns < 0;
  const double abs_ns = neg ? -static_cast<double>(ns) : static_cast<double>(ns);
  std::string body;
  if (abs_ns >= 1e9) {
    body = FormatScaled(abs_ns / 1e9, "s");
  } else if (abs_ns >= 1e6) {
    body = FormatScaled(abs_ns / 1e6, "ms");
  } else if (abs_ns >= 1e3) {
    body = FormatScaled(abs_ns / 1e3, "us");
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64 " ns", neg ? -ns : ns);
    body = buf;
  }
  return neg ? "-" + body : body;
}

}  // namespace faasnap

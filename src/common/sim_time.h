// Simulated-time value types.
//
// The discrete-event simulator advances an integer nanosecond clock. Wrapping the
// raw int64_t in small value types prevents unit confusion (e.g. adding microseconds
// to a nanosecond count) at zero runtime cost.

#ifndef FAASNAP_SRC_COMMON_SIM_TIME_H_
#define FAASNAP_SRC_COMMON_SIM_TIME_H_

#include <compare>
#include <cstdint>
#include <string>

#include "src/common/units.h"

namespace faasnap {

// A span of simulated time. Non-negative in almost all uses. The unit-scaling
// factories abort on int64 overflow (in every build flavor: they run on
// config/literal paths where a silent wrap once produced a negative deadline);
// +/- are overflow-checked in debug builds only, since they run per-fault.
class Duration {
 public:
  constexpr Duration() : ns_(0) {}
  static constexpr Duration Nanos(int64_t n) { return Duration(n); }
  static constexpr Duration Micros(int64_t n) {
    return Duration(unit_internal::CheckedScaleI64(n, 1000, "Duration::Micros"));
  }
  static constexpr Duration Millis(int64_t n) {
    return Duration(unit_internal::CheckedScaleI64(n, 1000000, "Duration::Millis"));
  }
  static constexpr Duration Seconds(int64_t n) {
    return Duration(unit_internal::CheckedScaleI64(n, 1000000000, "Duration::Seconds"));
  }
  static constexpr Duration Zero() { return Duration(0); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double micros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  std::string ToString() const { return FormatDuration(ns_); }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration other) const {
    return Duration(unit_internal::DebugCheckedAddI64(ns_, other.ns_, "Duration +"));
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(unit_internal::DebugCheckedSubI64(ns_, other.ns_, "Duration -"));
  }
  constexpr Duration& operator+=(Duration other) { return *this = *this + other; }
  constexpr Duration& operator-=(Duration other) { return *this = *this - other; }
  constexpr Duration operator*(int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(ns_ / k); }

 private:
  explicit constexpr Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

// An instant on the simulated clock (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() : ns_(0) {}
  static constexpr SimTime FromNanos(int64_t n) { return SimTime(n); }

  constexpr int64_t nanos() const { return ns_; }
  std::string ToString() const { return FormatDuration(ns_); }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(Duration d) const { return SimTime(ns_ + d.nanos()); }
  constexpr Duration operator-(SimTime other) const { return Duration::Nanos(ns_ - other.ns_); }
  constexpr SimTime& operator+=(Duration d) {
    ns_ += d.nanos();
    return *this;
  }

 private:
  explicit constexpr SimTime(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

constexpr SimTime Max(SimTime a, SimTime b) { return a < b ? b : a; }
constexpr Duration Max(Duration a, Duration b) { return a < b ? b : a; }
constexpr Duration Min(Duration a, Duration b) { return a < b ? a : b; }

}  // namespace faasnap

#endif  // FAASNAP_SRC_COMMON_SIM_TIME_H_

// Log2Histogram: power-of-two bucketed latency histogram.
//
// Figure 2 of the paper plots page-fault handling times into buckets
// 0.5us, 1us, 2us, ... 512us (both axes log scale). This histogram reproduces that
// bucketing: bucket i covers [lower * 2^i, lower * 2^(i+1)) nanoseconds.

#ifndef FAASNAP_SRC_COMMON_HISTOGRAM_H_
#define FAASNAP_SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"

namespace faasnap {

class Log2Histogram {
 public:
  // `lower_edge` is the upper edge of the first bucket; `num_buckets` buckets double
  // from there. A final overflow bucket catches everything beyond the last edge.
  // The Figure 2 configuration is Log2Histogram(Duration::Nanos(500), /*num_buckets=*/11):
  // <0.5us, 0.5-1us, 1-2us, ..., 256-512us, >512us.
  Log2Histogram(Duration lower_edge, int num_buckets);

  void Record(Duration d);
  void Merge(const Log2Histogram& other);
  void Reset();

  int64_t total_count() const { return total_count_; }
  Duration total_time() const { return total_time_; }
  Duration mean() const;
  // Smallest bucket upper edge such that >= fraction of samples are at or below it.
  // fraction in (0, 1]. Returns the overflow edge if needed.
  Duration ApproxQuantile(double fraction) const;
  // Quantile with log-linear interpolation *within* the winning bucket (samples
  // assumed log-uniform inside a power-of-two bucket; linear inside bucket 0,
  // which starts at zero). Unlike ApproxQuantile this never returns the
  // INT64_MAX overflow edge: the overflow bucket extrapolates one doubling
  // past the last finite edge. See EstimateLog2Quantile for the exact formula.
  Duration EstimateQuantile(double fraction) const;

  int num_buckets() const { return static_cast<int>(counts_.size()); }
  Duration lower_edge() const { return lower_; }
  int64_t bucket_count(int i) const { return counts_[static_cast<size_t>(i)]; }
  // Upper edge of bucket i (the overflow bucket reports Duration::Nanos(INT64_MAX)).
  Duration bucket_upper(int i) const;
  std::string BucketLabel(int i) const;

  // Multi-line "label: count" rendering with a proportional bar, for bench output.
  std::string ToString() const;

 private:
  Duration lower_;  // upper edge of bucket 0
  std::vector<int64_t> counts_;  // num_buckets + underflow handled by bucket 0 + overflow at end
  int64_t total_count_ = 0;
  Duration total_time_;
};

// Log-linear interpolated quantile over raw log2 bucket counts laid out like
// Log2Histogram's (`counts.back()` is the overflow bucket, earlier bucket i
// covers [lower * 2^(i-1), lower * 2^i), bucket 0 covers [0, lower)).
// Exposed separately so windowed *delta* counts (MetricsTimeline) can reuse the
// same estimator without building a temporary histogram. With target rank
// r = ceil(fraction * total) landing in a bucket [lo, hi) at in-bucket fraction
// f = (r - rank_before_bucket) / bucket_count:
//   bucket 0:   lo == 0, linear:      hi * f
//   bucket i:   log-linear:           lo * 2^f
//   overflow:   one doubling past the last finite edge: last_edge * 2^f
// Returns Zero when every count is zero.
Duration EstimateLog2Quantile(const std::vector<int64_t>& counts, Duration lower_edge,
                              double fraction);

// Plain running statistics (count/mean/min/max) for scalar series.
class RunningStats {
 public:
  void Record(double v);
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Population standard deviation.
  double stddev() const;

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_COMMON_HISTOGRAM_H_

// Page-granular interval containers.
//
// Snapshot files, working sets, and loading sets are all described as sets of
// guest-physical page ranges. PageRange is a half-open [first, first+count) run of
// page indices; PageRangeSet keeps an ordered, disjoint, coalesced collection with
// the set algebra FaaSnap needs: union, intersection, subtraction, gap-tolerant
// merging (the <=32-page region merge of paper section 4.6), and containment tests.

#ifndef FAASNAP_SRC_COMMON_PAGE_RANGE_H_
#define FAASNAP_SRC_COMMON_PAGE_RANGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace faasnap {

// Index of a 4 KiB page within some address space or file.
using PageIndex = uint64_t;

// Half-open run of pages [first, first + count).
struct PageRange {
  PageIndex first = 0;
  uint64_t count = 0;

  PageIndex end() const { return first + count; }
  bool empty() const { return count == 0; }
  bool Contains(PageIndex page) const { return page >= first && page < end(); }
  bool Overlaps(const PageRange& other) const {
    return first < other.end() && other.first < end();
  }

  bool operator==(const PageRange& other) const = default;
  std::string ToString() const;
};

// Ordered, disjoint, coalesced set of page ranges.
class PageRangeSet {
 public:
  PageRangeSet() = default;
  explicit PageRangeSet(std::vector<PageRange> ranges);

  // Inserts [first, first+count), coalescing with abutting/overlapping runs.
  void Add(PageIndex first, uint64_t count);
  void Add(const PageRange& r) { Add(r.first, r.count); }
  void AddPage(PageIndex page) { Add(page, 1); }

  // Removes [first, first+count) from the set (splitting runs as needed).
  void Remove(PageIndex first, uint64_t count);

  bool Contains(PageIndex page) const;
  // True iff every page of [first, first+count) is in the set (a single run must
  // cover the whole interval, since the set is coalesced). Empty intervals are
  // trivially contained.
  bool ContainsRange(PageIndex first, uint64_t count) const;
  bool ContainsRange(const PageRange& r) const { return ContainsRange(r.first, r.count); }
  // True iff any page of `r` is in the set.
  bool Overlaps(const PageRange& r) const;
  bool empty() const { return ranges_.empty(); }
  size_t range_count() const { return ranges_.size(); }
  uint64_t page_count() const { return page_total_; }

  const std::vector<PageRange>& ranges() const { return ranges_; }

  // Set algebra. All results are coalesced. Union/Subtract are single-pass linear
  // merges of the two sorted range lists; the InPlace variants reuse this set's
  // storage and avoid the deep copy of the returning forms.
  PageRangeSet Union(const PageRangeSet& other) const;
  PageRangeSet Intersect(const PageRangeSet& other) const;
  PageRangeSet Subtract(const PageRangeSet& other) const;
  void UnionInPlace(const PageRangeSet& other);
  void SubtractInPlace(const PageRangeSet& other);

  // Pages in [0, space) not in the set.
  PageRangeSet ComplementWithin(PageCount space) const;

  // Merges runs separated by gaps of at most `max_gap`, *including* the gap
  // pages in the result (paper section 4.6: "merges these adjacent regions by
  // including the pages in between them"). max_gap == 0 returns a copy.
  PageRangeSet MergeWithGapTolerance(PageCount max_gap) const;

  bool operator==(const PageRangeSet& other) const { return ranges_ == other.ranges_; }
  std::string ToString() const;

 private:
  // Appends a range known to start at or after the end of the last range,
  // coalescing with it if abutting. The fast path for algorithms that emit
  // ranges in ascending order.
  void AppendCoalescing(PageIndex first, uint64_t count);

  std::vector<PageRange> ranges_;  // sorted by first, disjoint, non-abutting
  uint64_t page_total_ = 0;  // running page count, maintained by every mutation
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_COMMON_PAGE_RANGE_H_

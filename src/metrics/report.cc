#include "src/metrics/report.h"

namespace faasnap {

void ReportSummary::Add(const InvocationReport& report) {
  if (function.empty()) {
    function = report.function;
    mode = report.mode;
  }
  total_ms.Record(report.total_time().millis());
  setup_ms.Record(report.setup_time.millis());
  invocation_ms.Record(report.invocation_time.millis());
}

}  // namespace faasnap

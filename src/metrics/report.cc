#include "src/metrics/report.h"

namespace faasnap {

std::string InvocationReport::OutcomeTag() const {
  switch (outcome) {
    case InvocationOutcome::kOk:
      return "ok";
    case InvocationOutcome::kDegraded:
      return "degraded(" + degraded_mode + ")";
    case InvocationOutcome::kFailed:
      return "failed(" + std::string(StatusCodeName(status.code())) + ")";
    case InvocationOutcome::kShedQueueFull:
      return "shed(queue-full)";
    case InvocationOutcome::kShedDeadline:
      return "shed(deadline)";
  }
  return "ok";
}

void ReportSummary::Add(const InvocationReport& report) {
  if (function.empty()) {
    function = report.function;
    mode = report.mode;
  }
  total_ms.Record(report.total_time().millis());
  setup_ms.Record(report.setup_time.millis());
  invocation_ms.Record(report.invocation_time.millis());
}

}  // namespace faasnap

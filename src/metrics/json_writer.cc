#include "src/metrics/json_writer.h"

namespace faasnap {

std::string InvocationReportToJson(const InvocationReport& report) {
  JsonWriter json;
  json.BeginObject()
      .Field("function", report.function)
      .Field("mode", report.mode);
  // Outcome fields appear only for non-ok invocations, so reports from fault-free
  // runs stay byte-identical to builds that predate the chaos subsystem.
  if (report.outcome != InvocationOutcome::kOk) {
    json.Field("outcome", report.OutcomeTag());
    if (!report.degraded_mode.empty()) {
      json.Field("degraded_mode", report.degraded_mode);
    }
    if (!report.status.ok()) {
      json.Field("status", report.status.ToString());
    }
    if (!report.prefetch_failed_pages.is_zero()) {
      json.Field("prefetch_failed_pages", report.prefetch_failed_pages);
    }
  }
  json.Field("total_ms", report.total_time().millis())
      .Field("setup_ms", report.setup_time.millis())
      .Field("invocation_ms", report.invocation_time.millis())
      .Field("fetch_ms", report.fetch_time.millis())
      .Field("fetch_bytes", report.fetch_bytes)
      .Field("guest_pagefault_bytes", report.guest_pagefault_bytes)
      .Field("mmap_calls", report.mmap_calls)
      .Field("disk_read_requests", report.disk.read_requests)
      .Field("disk_bytes_read", report.disk.bytes_read)
      .Field("anon_resident_pages", report.anon_resident_pages)
      .Field("page_cache_pages", report.page_cache_pages);

  json.Key("faults").BeginObject();
  for (int i = 0; i < static_cast<int>(FaultClass::kClassCount); ++i) {
    const FaultClass cls = static_cast<FaultClass>(i);
    // The huge-install class only exists under the huge-page lever; omitting it
    // at zero keeps lever-off reports byte-identical to pre-lever builds.
    if (cls == FaultClass::kHugeInstall && report.faults.counts[i] == 0) {
      continue;
    }
    json.Field(std::string(FaultClassName(cls)), static_cast<int64_t>(report.faults.counts[i]));
  }
  // Lever attribution appears only when a lever actually produced work (same
  // byte-identity rule as above).
  if (report.faults.batch_installs > 0) {
    json.Field("batch_installs", report.faults.batch_installs)
        .Field("batch_installed_pages", report.faults.batch_installed_pages);
  }
  if (report.faults.huge_installs > 0 || report.faults.huge_splits > 0) {
    json.Field("huge_installs", report.faults.huge_installs)
        .Field("huge_installed_pages", report.faults.huge_installed_pages)
        .Field("huge_splits", report.faults.huge_splits);
  }
  if (!report.faults.coalesced_pages.is_zero()) {
    json.Field("coalesced_pages", report.faults.coalesced_pages);
  }
  json.Field("total_fault_time_ms", report.faults.total_fault_time.millis())
      .Field("total_wait_time_ms", report.faults.total_wait_time.millis())
      .EndObject();

  const Log2Histogram& h = report.faults.latency_histogram;
  json.Key("fault_latency_histogram").BeginArray();
  for (int i = 0; i < h.num_buckets(); ++i) {
    json.BeginObject()
        .Field("upper_ns", h.bucket_upper(i))
        .Field("count", h.bucket_count(i))
        .EndObject();
  }
  json.EndArray().EndObject();
  return json.TakeString();
}

}  // namespace faasnap

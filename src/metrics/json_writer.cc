#include "src/metrics/json_writer.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "src/common/status.h"

namespace faasnap {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::MaybeComma() {
  if (!needs_comma_.empty() && needs_comma_.back() && !pending_key_) {
    out_ += ',';
  }
  if (!needs_comma_.empty() && !pending_key_) {
    needs_comma_.back() = true;
  }
  pending_key_ = false;
}

void JsonWriter::Raw(const std::string& s) {
  MaybeComma();
  out_ += s;
}

JsonWriter& JsonWriter::BeginObject() {
  Raw("{");
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  FAASNAP_CHECK(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Raw("[");
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  FAASNAP_CHECK(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  Raw("\"" + JsonEscape(v) + "\"");
  return *this;
}

JsonWriter& JsonWriter::Value(const char* v) { return Value(std::string(v)); }

JsonWriter& JsonWriter::Value(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  Raw(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  Raw(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  char buf[64];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "null");
  }
  Raw(buf);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  Raw(v ? "true" : "false");
  return *this;
}

std::string JsonWriter::TakeString() {
  FAASNAP_CHECK(needs_comma_.empty() && "unbalanced JSON scopes");
  return std::move(out_);
}

std::string InvocationReportToJson(const InvocationReport& report) {
  JsonWriter json;
  json.BeginObject()
      .Field("function", report.function)
      .Field("mode", report.mode)
      .Field("total_ms", report.total_time().millis())
      .Field("setup_ms", report.setup_time.millis())
      .Field("invocation_ms", report.invocation_time.millis())
      .Field("fetch_ms", report.fetch_time.millis())
      .Field("fetch_bytes", report.fetch_bytes)
      .Field("guest_pagefault_bytes", report.guest_pagefault_bytes)
      .Field("mmap_calls", report.mmap_calls)
      .Field("disk_read_requests", report.disk.read_requests)
      .Field("disk_bytes_read", report.disk.bytes_read)
      .Field("anon_resident_pages", report.anon_resident_pages)
      .Field("page_cache_pages", report.page_cache_pages);

  json.Key("faults").BeginObject();
  for (int i = 0; i < static_cast<int>(FaultClass::kClassCount); ++i) {
    json.Field(std::string(FaultClassName(static_cast<FaultClass>(i))),
               static_cast<int64_t>(report.faults.counts[i]));
  }
  json.Field("total_fault_time_ms", report.faults.total_fault_time.millis())
      .Field("total_wait_time_ms", report.faults.total_wait_time.millis())
      .EndObject();

  const Log2Histogram& h = report.faults.latency_histogram;
  json.Key("fault_latency_histogram").BeginArray();
  for (int i = 0; i < h.num_buckets(); ++i) {
    json.BeginObject()
        .Field("upper_ns", h.bucket_upper_ns(i))
        .Field("count", h.bucket_count(i))
        .EndObject();
  }
  json.EndArray().EndObject();
  return json.TakeString();
}

}  // namespace faasnap

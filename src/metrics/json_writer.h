// InvocationReport JSON serialization for downstream tooling (plotting scripts,
// dashboards, the CLI's --json flag). The generic streaming JsonWriter lives in
// src/common/json_writer.h and is re-exported here for existing includers.

#ifndef FAASNAP_SRC_METRICS_JSON_WRITER_H_
#define FAASNAP_SRC_METRICS_JSON_WRITER_H_

#include <string>

#include "src/common/json_writer.h"
#include "src/metrics/report.h"

namespace faasnap {

// Full InvocationReport as a JSON object (times in milliseconds, sizes in bytes,
// fault counts by class, and the latency histogram buckets).
std::string InvocationReportToJson(const InvocationReport& report);

}  // namespace faasnap

#endif  // FAASNAP_SRC_METRICS_JSON_WRITER_H_

// Fixed-width ASCII table rendering for the benchmark harnesses.
//
// Every bench binary prints the rows/series its paper figure reports; this keeps
// the output uniform and diffable across runs.

#ifndef FAASNAP_SRC_METRICS_TABLE_H_
#define FAASNAP_SRC_METRICS_TABLE_H_

#include <string>
#include <vector>

namespace faasnap {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Adds a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  // Renders with a header underline and 2-space column gaps. Numeric-looking
  // cells are right-aligned, text is left-aligned.
  std::string ToString() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style convenience: FormatCell("%.1f", x).
std::string FormatCell(const char* fmt, ...);

}  // namespace faasnap

#endif  // FAASNAP_SRC_METRICS_TABLE_H_

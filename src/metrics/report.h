// Per-invocation reports: everything the paper's figures and tables read off a run.

#ifndef FAASNAP_SRC_METRICS_REPORT_H_
#define FAASNAP_SRC_METRICS_REPORT_H_

#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/mem/fault_metrics.h"
#include "src/storage/block_device.h"

namespace faasnap {

// How an invocation ended under the failure-aware restore pipeline:
//   kOk            — restored and ran exactly as requested,
//   kDegraded      — completed correctly, but on a fallback path (e.g. a corrupt
//                    loading set demoted FaaSnap to vanilla on-demand paging),
//   kFailed        — terminated with a typed error; the function did not complete.
//   kShedQueueFull — rejected by admission control on arrival: the bounded
//                    per-host queue was full. The function never ran.
//   kShedDeadline  — dropped by admission control after queueing: the request
//                    exceeded its queueing deadline before a slot opened.
enum class InvocationOutcome { kOk = 0, kDegraded, kFailed, kShedQueueFull, kShedDeadline };

inline constexpr int kInvocationOutcomeCount = 5;

struct InvocationReport {
  std::string function;
  std::string mode;  // the *requested* restore mode

  InvocationOutcome outcome = InvocationOutcome::kOk;
  // For kDegraded: the fallback actually used ("fc", "reap-on-demand",
  // "partial-prefetch", ...). Empty otherwise.
  std::string degraded_mode;
  // For kDegraded/kFailed: why (the first terminal error observed).
  Status status;
  // Loading-set pages the concurrent loader failed to prefetch (served on
  // demand instead).
  PageCount prefetch_failed_pages;

  // "ok" | "degraded(<mode>)" | "failed(<STATUS_CODE>)".
  std::string OutcomeTag() const;

  // Gray bar of Figure 1: VMM restore, mapping, and (REAP) working set fetch.
  Duration setup_time;
  // Primary bar of Figure 1: function execution on the restored VM.
  Duration invocation_time;
  Duration total_time() const { return setup_time + invocation_time; }

  FaultMetrics faults;

  // Prefetcher activity (Table 3 "fetch time/size"): REAP's blocking working-set
  // fetch or FaaSnap's concurrent loader.
  Duration fetch_time;
  ByteCount fetch_bytes;

  // Bytes of guest pages that had to block on IO (major/in-flight/uffd-handled):
  // Table 3's "guest pagefault size".
  ByteCount guest_pagefault_bytes;

  // mmap calls during setup (the section 4.6 merge-threshold effect).
  uint64_t mmap_calls = 0;

  // Disk traffic attributable to this invocation.
  BlockDeviceStats disk;

  // Host memory at completion: VM-resident anonymous pages plus page-cache pages
  // (section 7.3 footprint accounting). Meaningful for single-VM runs.
  PageCount anon_resident_pages;
  PageCount page_cache_pages;
};

// Mean/stddev across repetitions of the same (function, mode) cell.
struct ReportSummary {
  std::string function;
  std::string mode;
  RunningStats total_ms;
  RunningStats setup_ms;
  RunningStats invocation_ms;

  void Add(const InvocationReport& report);
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_METRICS_REPORT_H_

#include "src/metrics/table.h"

#include <cstdarg>
#include <cstdio>

#include "src/common/status.h"

namespace faasnap {

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  // Numbers, decimal points, signs, and unit suffixes like "ms"/"MiB" count.
  bool has_digit = false;
  for (char c : s) {
    if (c >= '0' && c <= '9') {
      has_digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != ' ' && c != '%' && c != 'x' &&
               (c < 'A' || c > 'z')) {
      return false;
    }
  }
  return has_digit && (s[0] == '-' || s[0] == '+' || (s[0] >= '0' && s[0] <= '9'));
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FAASNAP_CHECK(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  FAASNAP_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (size_t c = 0; c < row.size(); ++c) {
      const bool right = align_numeric && LooksNumeric(row[c]);
      const size_t pad = widths[c] - row[c].size();
      if (c > 0) {
        out += "  ";
      }
      if (right) {
        out.append(pad, ' ');
        out += row[c];
      } else {
        out += row[c];
        if (c + 1 < row.size()) {
          out.append(pad, ' ');
        }
      }
    }
    out += '\n';
  };
  emit_row(headers_, /*align_numeric=*/false);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    emit_row(row, /*align_numeric=*/true);
  }
  return out;
}

std::string FormatCell(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace faasnap

// FunctionSnapshot: everything the record phase produces for one function.
//
// The record invocation is run once (the guest's execution is identical either
// way) and yields artifacts for every restore policy:
//   * memory_vanilla   — the post-record memory file without freed-page
//                        sanitization (what Firecracker/Cached/REAP restore from),
//   * memory_sanitized — the post-record memory file with the modified guest
//                        kernel's freed-page sanitization (what FaaSnap restores
//                        from; freed transients are zero, hence anonymous-mapped),
//   * reap_ws          — REAP's fault-ordered working set file,
//   * ws_groups        — FaaSnap's mincore-recorded working set groups,
//   * loading_set      — the compact loading set file built from the two above,
//   * record_touched   — pages resident after the record run (the Warm baseline's
//                        in-memory state).

#ifndef FAASNAP_SRC_CORE_FUNCTION_SNAPSHOT_H_
#define FAASNAP_SRC_CORE_FUNCTION_SNAPSHOT_H_

#include <string>

#include "src/common/page_range.h"
#include "src/snapshot/snapshot_files.h"

namespace faasnap {

struct FunctionSnapshot {
  std::string function;
  PageCount guest_pages;

  MemoryFile memory_vanilla;
  MemoryFile memory_sanitized;
  ReapWorkingSetFile reap_ws;
  WorkingSetGroups ws_groups;
  LoadingSetFile loading_set;
  PageRangeSet record_touched;

  // Guest pages registered as high-value secrets (PRNG state and the like) via an
  // MADV_WIPEONSUSPEND-style interface (paper section 7.4): their contents are
  // wiped when the snapshot is taken, so every restored VM sees zeroed state and
  // must reseed — restored instances never share secrets.
  PageRangeSet wipe_regions;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_CORE_FUNCTION_SNAPSHOT_H_

#include "src/core/loading_set_builder.h"

#include <algorithm>

namespace faasnap {

LoadingSetFile BuildLoadingSet(const WorkingSetGroups& groups, const MemoryFile& memory,
                               const LoadingSetConfig& config) {
  // Working set pages that are non-zero in the new memory file.
  const PageRangeSet working_set = groups.AllPages();
  const PageRangeSet loading_pages = working_set.Intersect(memory.nonzero);

  // Merge regions separated by small gaps (gap pages are stored too; the paper
  // measured only ~5% extra data for hello-world).
  const PageRangeSet merged = loading_pages.MergeWithGapTolerance(config.merge_gap_pages);

  LoadingSetFile file;
  file.regions.reserve(merged.range_count());
  for (const PageRange& r : merged.ranges()) {
    LoadingRegion region;
    region.guest = r;
    region.group = groups.LowestGroupFor(r);
    file.regions.push_back(region);
  }

  // Sort by (group, guest address), then pack file offsets contiguously.
  std::sort(file.regions.begin(), file.regions.end(),
            [](const LoadingRegion& a, const LoadingRegion& b) {
              if (a.group != b.group) {
                return a.group < b.group;
              }
              return a.guest.first < b.guest.first;
            });
  PageIndex offset = 0;
  for (LoadingRegion& region : file.regions) {
    region.file_start = offset;
    offset += region.guest.count;
  }
  file.total_pages = PageCount::FromPages(offset);
  return file;
}

}  // namespace faasnap

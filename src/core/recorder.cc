#include "src/core/recorder.h"

namespace faasnap {

FaasnapRecorder::FaasnapRecorder(const PageCache* cache, FileId memory_file, uint64_t group_size)
    : cache_(cache), memory_file_(memory_file), group_size_(group_size) {
  FAASNAP_CHECK(cache_ != nullptr);
  FAASNAP_CHECK(group_size_ > 0);
}

void FaasnapRecorder::OnAccess(PageIndex page, FaultClass cls) {
  if (cls == FaultClass::kNoFault) {
    return;  // repeat access; RSS unchanged
  }
  pending_resident_.AddPage(page);
  if (++new_resident_since_scan_ >= group_size_) {
    Scan();
  }
}

void FaasnapRecorder::Scan() {
  ++scan_count_;
  new_resident_since_scan_ = 0;
  // mincore over the mapped memory file sees (a) pages the guest touched (resident
  // in the VMM) and (b) pages readahead brought into the page cache.
  PageRangeSet present = cache_->PresentPages(memory_file_);
  present.UnionInPlace(pending_resident_);
  pending_resident_ = PageRangeSet();
  present.SubtractInPlace(recorded_);
  if (present.empty()) {
    return;
  }
  recorded_.UnionInPlace(present);
  groups_.groups.push_back(std::move(present));
}

WorkingSetGroups FaasnapRecorder::Finish() {
  Scan();
  return std::move(groups_);
}

void ReapRecorder::OnAccess(PageIndex page, FaultClass cls) {
  if (cls == FaultClass::kNoFault) {
    return;
  }
  if (seen_.Contains(page)) {
    return;
  }
  seen_.AddPage(page);
  pages_.push_back(page);
}

ReapWorkingSetFile ReapRecorder::Finish() && {
  ReapWorkingSetFile file;
  file.guest_pages = std::move(pages_);
  return file;
}

}  // namespace faasnap

// Loading set construction (paper sections 4.6-4.7).
//
// loading set = working set ∩ non-zero pages of the new (post-record) memory file.
// Adjacent regions separated by at most `merge_gap_pages` (default 32) are merged,
// including the gap pages, to bound the number of mmap calls at restore. Regions
// are assigned the lowest group number of any contained page, sorted by
// (group, guest address), and packed contiguously into the loading set file so the
// loader's sequential file scan follows approximate access order.

#ifndef FAASNAP_SRC_CORE_LOADING_SET_BUILDER_H_
#define FAASNAP_SRC_CORE_LOADING_SET_BUILDER_H_

#include <cstdint>

#include "src/snapshot/snapshot_files.h"

namespace faasnap {

struct LoadingSetConfig {
  PageCount merge_gap_pages = PageCount::FromPages(32);  // empirical threshold from section 4.6
};

// Builds the loading set file layout. The caller registers the file with a
// SnapshotStore and assigns `id` afterwards.
LoadingSetFile BuildLoadingSet(const WorkingSetGroups& groups, const MemoryFile& memory,
                               const LoadingSetConfig& config = {});

}  // namespace faasnap

#endif  // FAASNAP_SRC_CORE_LOADING_SET_BUILDER_H_

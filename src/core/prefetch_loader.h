// PrefetchLoader: the FaaSnap daemon's loader thread (paper section 4.2).
//
// Reads a sequence of file ranges into the host page cache, keeping a small
// pipeline of device reads in flight (mirroring kernel readahead on a streaming
// read). Pages already present or in flight are skipped — this is the "lock that
// ensures the loading set is accessed exactly once" in bursty same-snapshot runs
// (section 6.6): concurrent loaders dedupe through shared page-cache state.
//
// The same loader implements the Figure 9 ablations by changing what it is given:
//   * address-ordered working-set ranges from the memory file  (concurrent paging),
//   * group-ordered loading regions from the memory file       (per-region mapping),
//   * one sequential range over the compact loading set file   (full FaaSnap).

#ifndef FAASNAP_SRC_CORE_PREFETCH_LOADER_H_
#define FAASNAP_SRC_CORE_PREFETCH_LOADER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/page_range.h"
#include "src/common/sim_time.h"
#include "src/common/thread_annotations.h"
#include "src/mem/page_cache.h"
#include "src/sim/simulation.h"
#include "src/obs/legacy_tracer.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/span_tracer.h"
#include "src/storage/storage_router.h"

namespace faasnap {

class FaultInjector;

struct PrefetchItem {
  FileId file = kInvalidFileId;
  PageRange range;
};

struct PrefetchConfig {
  // Pages per device read. 512 pages = 2 MiB: large enough to hit streaming
  // bandwidth, small enough that the guest rarely waits long on an in-flight chunk.
  PageCount chunk_pages = PageCount::FromPages(512);
  // Reads kept in flight concurrently (the loader thread's IO queue depth).
  int pipeline_depth = 4;
  // Adaptive throttling: while demand reads are queued or in service at the
  // router, the effective depth halves (down to min_pipeline_depth) each time
  // the pipeline refills, backing the loader off the device the guest is
  // blocked on; after depth_ramp_quiet without demand pressure it doubles back
  // toward pipeline_depth. Driven entirely by simulation state, so same-seed
  // runs stay bit-identical.
  bool adaptive_depth = true;
  int min_pipeline_depth = 1;
  Duration depth_ramp_quiet = Duration::Millis(1);
};

class PrefetchLoader {
 public:
  PrefetchLoader(Simulation* sim, PageCache* cache, StorageRouter* storage,
                 PrefetchConfig config = {});

  // Prefetches `items` in order; `done` fires when every page is present.
  // One Start per loader instance.
  void Start(std::vector<PrefetchItem> items, std::function<void()> done);

  // Attaches span tracing and metrics. The loader's whole run becomes one span
  // on the loader lane; each chunk read nests under it (with its device read
  // nesting under the chunk). Metrics: fetched bytes, skipped pages, chunk
  // count. Null pointers detach.
  void set_observability(SpanTracer* spans, MetricsRegistry* metrics);

  // Deprecated: legacy entry point; equivalent to attaching the EventTracer's
  // underlying span tracer with no metrics.
  void set_tracer(EventTracer* tracer) {
    set_observability(tracer != nullptr ? &tracer->spans() : nullptr, nullptr);
  }

  // Span the loader's run span parents to (the owning invoke/record span).
  void set_parent_span(SpanId span) { parent_span_ = span; }

  // Attaches deterministic fault injection: the loader thread may stall before
  // issuing a chunk (holding a pipeline slot for the stall), and chunk reads
  // that fail terminally are surfaced as partial-prefetch failure instead of
  // hanging the loader. Null detaches; detached cost is one branch per chunk.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // Progress surface, readable from any thread (guarded by mu_). The loader is
  // *driven* from the simulation thread only; these accessors exist so a
  // monitor off that thread can poll progress safely.
  bool started() const FAASNAP_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return started_;
  }
  bool finished() const FAASNAP_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return finished_;
  }
  // Wall-clock from Start to completion (valid once finished).
  Duration fetch_time() const FAASNAP_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return fetch_time_;
  }
  // Bytes this loader actually read from the device.
  ByteCount fetched_bytes() const FAASNAP_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return fetched_bytes_;
  }
  // Pages skipped because another actor already cached or was reading them.
  PageCount skipped_pages() const FAASNAP_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return skipped_pages_;
  }

  // Partial-prefetch failure surface: OK when every issued read succeeded;
  // otherwise the first terminal read error. The loader still runs to
  // completion (done fires) — the pages are simply not cached, and the guest
  // will demand-fault them later. Valid once finished.
  Status status() const FAASNAP_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return status_;
  }
  // Pages whose covering reads failed (left absent, not installed).
  PageCount failed_pages() const FAASNAP_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return failed_pages_;
  }

  // Effective pipeline depth right now (== config.pipeline_depth with adaptive
  // throttling off). Sim-thread confined, exposed for tests.
  int current_depth() const { return current_depth_; }

 private:
  void Pump();
  void UpdateDepth();
  void IssueChunk(const PrefetchItem& chunk);
  void OnChunkDone();

  Simulation* sim_;
  PageCache* cache_;
  StorageRouter* storage_;
  PrefetchConfig config_;

  // Pipeline-driving state: confined to the simulation thread (mutated only
  // from Start and simulation callbacks), so it carries no guard.
  std::deque<PrefetchItem> chunks_;  // pre-split work queue
  int in_flight_ = 0;
  int current_depth_ = 0;    // set from config at construction
  SimTime quiet_since_;      // last time demand pressure was seen (or depth changed)
  SimTime start_time_;
  FaultInjector* injector_ = nullptr;
  std::function<void()> done_;

  mutable Mutex mu_;
  bool started_ FAASNAP_GUARDED_BY(mu_) = false;
  bool finished_ FAASNAP_GUARDED_BY(mu_) = false;
  Duration fetch_time_ FAASNAP_GUARDED_BY(mu_);
  ByteCount fetched_bytes_ FAASNAP_GUARDED_BY(mu_);
  PageCount skipped_pages_ FAASNAP_GUARDED_BY(mu_);
  PageCount failed_pages_ FAASNAP_GUARDED_BY(mu_);
  Status status_ FAASNAP_GUARDED_BY(mu_);

  SpanTracer* spans_ = nullptr;
  uint32_t loader_name_ = 0;        // pre-interned obsname::kLoader
  uint32_t loader_chunk_name_ = 0;  // pre-interned obsname::kLoaderChunk
  SpanId parent_span_ = kNoSpan;
  SpanId run_span_ = kNoSpan;
  Counter* fetched_bytes_metric_ = nullptr;
  Counter* skipped_pages_metric_ = nullptr;
  Counter* chunks_metric_ = nullptr;
  Gauge* depth_metric_ = nullptr;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_CORE_PREFETCH_LOADER_H_

// Platform-wide configuration: the knobs of the evaluation testbed (section 6.1)
// plus FaaSnap's tunables (group size N=1024, merge threshold 32).

#ifndef FAASNAP_SRC_CORE_PLATFORM_CONFIG_H_
#define FAASNAP_SRC_CORE_PLATFORM_CONFIG_H_

#include <cstdint>
#include <optional>

#include "src/chaos/fault_injector.h"
#include "src/core/loading_set_builder.h"
#include "src/core/prefetch_loader.h"
#include "src/mem/cost_model.h"
#include "src/mem/readahead.h"
#include "src/storage/block_device.h"
#include "src/storage/device_profiles.h"
#include "src/storage/storage_router.h"
#include "src/vm/guest_layout.h"

namespace faasnap {

// Which device a snapshot artifact lives on (section 7.2's tiered storage).
enum class StorageTier { kLocal, kRemote };

// Per-artifact placement. Remote tiers require PlatformConfig::remote_disk.
struct SnapshotPlacement {
  StorageTier memory_files = StorageTier::kLocal;
  StorageTier loading_set = StorageTier::kLocal;
  StorageTier reap_ws = StorageTier::kLocal;
};

struct PlatformConfig {
  // c5d.metal: 96 vCPUs (section 6.1).
  int host_cores = 96;
  BlockDeviceProfile disk = NvmeSsdProfile();
  // Optional second (remote) device for tiered snapshot storage: e.g. loading set
  // files on the local SSD, memory files on EBS (section 7.2).
  std::optional<BlockDeviceProfile> remote_disk;
  SnapshotPlacement placement;
  HostCostModel host_costs;
  SetupCostModel setup_costs;
  // Fault-path levers (batched uffd installs, huge regions, coalescing). All
  // off by default; the record phase always runs with them off so snapshot
  // artifacts are identical across lever settings.
  FaultPathConfig fault_path;
  ReadaheadConfig readahead;
  GuestConfig guest;
  GuestLayout layout = GuestLayout::Default2GiB();

  // FaaSnap tunables.
  uint64_t ws_group_size = 1024;      // section 4.3: N = 1024 works well
  LoadingSetConfig loading_set;       // merge threshold 32 (section 4.6)
  PrefetchConfig loader;

  // Snapshot security (section 7.4): pages of guest PRNG/secret state wiped when
  // a snapshot is taken (the MADV_WIPEONSUSPEND proposal). 0 disables wiping.
  PageCount wipe_secret_pages;

  // Deterministic fault injection (chaos harness). Disabled by default; when
  // disabled the platform behaves event-for-event identically to a build
  // without the chaos subsystem.
  ChaosConfig chaos;
  // Retry/deadline/circuit-breaker policy for snapshot storage reads. Only
  // consulted on the Status-returning read path, i.e. when chaos is enabled.
  StorageFaultPolicy storage_faults;

  // Seed for device jitter and any stochastic behavior; vary across repetitions
  // to produce the error bars the figures report.
  uint64_t seed = 1;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_CORE_PLATFORM_CONFIG_H_

// Record-phase working-set recorders.
//
// FaasnapRecorder implements host page recording (paper sections 4.4, 5): the
// daemon polls the guest's RSS and, once at least one group's worth (1024) of new
// pages is resident, runs a mincore scan over the mapped memory file. Each scan's
// newly present pages form the next working set group. Because mincore sees the
// host page cache, pages pulled in by readahead — never faulted on by the guest —
// are recorded too; that is precisely what makes the working set tolerant of
// input changes.
//
// ReapRecorder reproduces REAP's record phase: userfaultfd reports each faulting
// guest page; the fault-order page list becomes the working set file. Readahead
// pages are NOT captured (the comparison the paper draws in section 4.4).

#ifndef FAASNAP_SRC_CORE_RECORDER_H_
#define FAASNAP_SRC_CORE_RECORDER_H_

#include <cstdint>
#include <vector>

#include "src/common/page_range.h"
#include "src/mem/address_space.h"
#include "src/mem/fault_metrics.h"
#include "src/mem/page_cache.h"
#include "src/snapshot/snapshot_files.h"

namespace faasnap {

class FaasnapRecorder {
 public:
  // `memory_file` is the clean snapshot's memory file, mapped 1:1 over guest
  // physical memory during the record invocation, so cache presence at file page p
  // corresponds to guest page p.
  FaasnapRecorder(const PageCache* cache, FileId memory_file, uint64_t group_size = 1024);

  // Vm access observer: counts newly resident pages and triggers scans.
  void OnAccess(PageIndex page, FaultClass cls);

  // Final scan; returns the recorded groups. The recorder is spent afterwards.
  WorkingSetGroups Finish();

  uint64_t scan_count() const { return scan_count_; }

 private:
  void Scan();

  const PageCache* cache_;
  FileId memory_file_;
  uint64_t group_size_;
  uint64_t new_resident_since_scan_ = 0;
  PageRangeSet pending_resident_;  // first-touched pages since the last scan
  PageRangeSet recorded_;          // union of all groups so far
  WorkingSetGroups groups_;
  uint64_t scan_count_ = 0;
};

class ReapRecorder {
 public:
  // Vm access observer: records each first fault in order.
  void OnAccess(PageIndex page, FaultClass cls);

  // The fault-ordered working set (file id assigned by the caller).
  ReapWorkingSetFile Finish() &&;

  PageCount recorded_pages() const { return PageCount::FromPages(pages_.size()); }

 private:
  std::vector<PageIndex> pages_;
  PageRangeSet seen_;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_CORE_RECORDER_H_

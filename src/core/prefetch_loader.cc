#include "src/core/prefetch_loader.h"

#include "src/common/units.h"

namespace faasnap {

PrefetchLoader::PrefetchLoader(Simulation* sim, PageCache* cache, StorageRouter* storage,
                               PrefetchConfig config)
    : sim_(sim), cache_(cache), storage_(storage), config_(config) {
  FAASNAP_CHECK(sim_ != nullptr && cache_ != nullptr && storage_ != nullptr);
  FAASNAP_CHECK(config_.chunk_pages > 0);
  FAASNAP_CHECK(config_.pipeline_depth > 0);
}

void PrefetchLoader::Start(std::vector<PrefetchItem> items, std::function<void()> done) {
  FAASNAP_CHECK(!started_);
  started_ = true;
  start_time_ = sim_->now();
  done_ = std::move(done);
  for (const PrefetchItem& item : items) {
    FAASNAP_CHECK(item.file != kInvalidFileId);
    PageIndex cursor = item.range.first;
    while (cursor < item.range.end()) {
      const uint64_t count = std::min<uint64_t>(config_.chunk_pages, item.range.end() - cursor);
      chunks_.push_back(PrefetchItem{item.file, PageRange{cursor, count}});
      cursor += count;
    }
  }
  Pump();
}

void PrefetchLoader::Pump() {
  while (in_flight_ < config_.pipeline_depth && !chunks_.empty()) {
    const PrefetchItem chunk = chunks_.front();
    chunks_.pop_front();
    // Skip pages someone else already cached or is reading; read the rest.
    const PageRangeSet missing = cache_->AbsentIn(chunk.file, chunk.range);
    skipped_pages_ += chunk.range.count - missing.page_count();
    if (missing.empty()) {
      continue;
    }
    for (const PageRange& r : missing.ranges()) {
      const PageCache::ReadHandle handle = cache_->BeginRead(chunk.file, r);
      if (tracer_ != nullptr) {
        tracer_->Emit(sim_->now(), TraceEventType::kLoaderChunk, r.first, r.count);
      }
      fetched_bytes_ += PagesToBytes(r.count);
      ++in_flight_;
      storage_->Read(chunk.file, PagesToBytes(r.first), PagesToBytes(r.count), [this, handle] {
        cache_->CompleteRead(handle);
        OnChunkDone();
      });
    }
  }
  if (in_flight_ == 0 && chunks_.empty() && !finished_) {
    finished_ = true;
    fetch_time_ = sim_->now() - start_time_;
    if (done_) {
      // Move out first: done_ may destroy this loader.
      auto done = std::move(done_);
      done();
    }
  }
}

void PrefetchLoader::OnChunkDone() {
  --in_flight_;
  Pump();
}

}  // namespace faasnap

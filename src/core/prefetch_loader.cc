#include "src/core/prefetch_loader.h"

#include <algorithm>

#include "src/chaos/fault_injector.h"
#include "src/common/units.h"
#include "src/obs/observability.h"

namespace faasnap {

PrefetchLoader::PrefetchLoader(Simulation* sim, PageCache* cache, StorageRouter* storage,
                               PrefetchConfig config)
    : sim_(sim), cache_(cache), storage_(storage), config_(config) {
  FAASNAP_CHECK(sim_ != nullptr && cache_ != nullptr && storage_ != nullptr);
  FAASNAP_CHECK(!config_.chunk_pages.is_zero());
  FAASNAP_CHECK(config_.pipeline_depth > 0);
  FAASNAP_CHECK(config_.min_pipeline_depth >= 1 &&
                config_.min_pipeline_depth <= config_.pipeline_depth);
  current_depth_ = config_.pipeline_depth;
}

void PrefetchLoader::set_observability(SpanTracer* spans, MetricsRegistry* metrics) {
  spans_ = spans;
  if (spans_ != nullptr) {
    loader_name_ = spans_->InternName(obsname::kLoader);
    loader_chunk_name_ = spans_->InternName(obsname::kLoaderChunk);
  }
  if (metrics != nullptr) {
    fetched_bytes_metric_ = metrics->GetCounter("loader.fetched_bytes");
    skipped_pages_metric_ = metrics->GetCounter("loader.skipped_pages");
    chunks_metric_ = metrics->GetCounter("loader.chunks");
    depth_metric_ = metrics->GetGauge("loader.pipeline_depth");
    depth_metric_->Set(static_cast<double>(current_depth_));
  } else {
    fetched_bytes_metric_ = nullptr;
    skipped_pages_metric_ = nullptr;
    chunks_metric_ = nullptr;
    depth_metric_ = nullptr;
  }
}

void PrefetchLoader::Start(std::vector<PrefetchItem> items, std::function<void()> done) {
  {
    MutexLock lock(mu_);
    FAASNAP_CHECK(!started_);
    started_ = true;
  }
  start_time_ = sim_->now();
  quiet_since_ = start_time_;
  done_ = std::move(done);
  if (spans_ != nullptr) {
    run_span_ = spans_->BeginId(start_time_, ObsLane::kLoader, loader_name_, 0, 0, parent_span_);
  }
  for (const PrefetchItem& item : items) {
    FAASNAP_CHECK(item.file != kInvalidFileId);
    PageIndex cursor = item.range.first;
    while (cursor < item.range.end()) {
      const uint64_t count =
          std::min<uint64_t>(config_.chunk_pages.value(), item.range.end() - cursor);
      chunks_.push_back(PrefetchItem{item.file, PageRange{cursor, count}});
      cursor += count;
    }
  }
  Pump();
}

void PrefetchLoader::UpdateDepth() {
  if (!config_.adaptive_depth) {
    return;
  }
  const SimTime now = sim_->now();
  if (storage_->DemandPressure() > 0) {
    // The guest is blocked on disk right now: back off so the device's queue
    // drains demand first. Halving per refill converges in a few chunks.
    const int halved = std::max(config_.min_pipeline_depth, current_depth_ / 2);
    if (halved != current_depth_) {
      current_depth_ = halved;
      if (depth_metric_ != nullptr) {
        depth_metric_->Set(static_cast<double>(current_depth_));
      }
    }
    quiet_since_ = now;
  } else if (current_depth_ < config_.pipeline_depth &&
             now - quiet_since_ >= config_.depth_ramp_quiet) {
    // Device quiet for a full ramp interval: double back toward the configured
    // depth, one step per interval.
    current_depth_ = std::min(config_.pipeline_depth, current_depth_ * 2);
    quiet_since_ = now;
    if (depth_metric_ != nullptr) {
      depth_metric_->Set(static_cast<double>(current_depth_));
    }
  }
}

void PrefetchLoader::Pump() {
  UpdateDepth();
  while (in_flight_ < current_depth_ && !chunks_.empty()) {
    const PrefetchItem chunk = chunks_.front();
    chunks_.pop_front();
    if (injector_ != nullptr) {
      const Duration stall = injector_->NextLoaderStall();
      if (stall > Duration::Zero()) {
        // The loader thread blocks (scheduler preemption, cgroup throttling):
        // it holds a pipeline slot for the stall, then issues the chunk.
        ++in_flight_;
        sim_->ScheduleAfter(stall, [this, chunk] {
          --in_flight_;
          IssueChunk(chunk);
          Pump();
        });
        continue;
      }
    }
    IssueChunk(chunk);
  }
  if (in_flight_ == 0 && chunks_.empty()) {
    ByteCount fetched;
    PageCount skipped;
    bool just_finished = false;
    {
      MutexLock lock(mu_);
      if (!finished_) {
        finished_ = true;
        fetch_time_ = sim_->now() - start_time_;
        fetched = fetched_bytes_;
        skipped = skipped_pages_;
        just_finished = true;
      }
    }
    if (!just_finished) {
      return;
    }
    if (spans_ != nullptr) {
      spans_->End(run_span_, sim_->now(), fetched.value());
    }
    if (skipped_pages_metric_ != nullptr) {
      skipped_pages_metric_->Add(static_cast<int64_t>(skipped.value()));
    }
    if (done_) {
      // Move out first: done_ may destroy this loader.
      auto done = std::move(done_);
      done();
    }
  }
}

void PrefetchLoader::IssueChunk(const PrefetchItem& chunk) {
  // Skip pages someone else already cached or is reading; read the rest.
  const PageRangeSet missing = cache_->AbsentIn(chunk.file, chunk.range);
  {
    MutexLock lock(mu_);
    skipped_pages_ += PageCount::FromPages(chunk.range.count - missing.page_count());
  }
  for (const PageRange& r : missing.ranges()) {
    const PageCache::ReadHandle handle = cache_->BeginRead(chunk.file, r);
    const SpanId chunk_span =
        spans_ != nullptr ? spans_->BeginId(sim_->now(), ObsLane::kLoader, loader_chunk_name_,
                                            r.first, r.count, run_span_)
                          : kNoSpan;
    {
      MutexLock lock(mu_);
      fetched_bytes_ += PagesToBytes(PageCount::FromPages(r.count));
    }
    if (fetched_bytes_metric_ != nullptr) {
      fetched_bytes_metric_->Add(static_cast<int64_t>(PagesToBytes(r.count)));
      chunks_metric_->Add(1);
    }
    ++in_flight_;
    storage_->ReadWithStatus(
        chunk.file, PagesToBytes(r.first), PagesToBytes(r.count),
        [this, handle, chunk_span, pages = r.count](Status read_status) {
          if (read_status.ok()) {
            cache_->CompleteRead(handle);
          } else {
            // Partial-prefetch failure: retire the read (waking any co-waiters
            // with the error), record it, and keep the pipeline draining — the
            // loader must finish even when chunks fail.
            cache_->FailRead(handle, read_status);
            MutexLock lock(mu_);
            failed_pages_ += PageCount::FromPages(pages);
            fetched_bytes_ -= PagesToBytes(PageCount::FromPages(pages));
            if (status_.ok()) {
              status_ = std::move(read_status);
            }
          }
          if (spans_ != nullptr) {
            spans_->End(chunk_span, sim_->now());
          }
          OnChunkDone();
        },
        chunk_span, ReadClass::kPrefetch);
  }
}

void PrefetchLoader::OnChunkDone() {
  --in_flight_;
  Pump();
}

}  // namespace faasnap

#include "src/runtime/platform.h"

#include <algorithm>
#include <utility>

#include "src/common/units.h"
#include "src/core/loading_set_builder.h"
#include "src/core/prefetch_loader.h"
#include "src/core/recorder.h"
#include "src/mem/address_space.h"
#include "src/mem/fault_engine.h"
#include "src/mem/readahead.h"

namespace faasnap {

namespace {

// InvocationOutcome and ForensicOutcome mirror each other (obs cannot depend
// on src/metrics in the layering DAG); translate at the boundary.
ForensicOutcome ToForensicOutcome(InvocationOutcome outcome) {
  switch (outcome) {
    case InvocationOutcome::kOk:
      return ForensicOutcome::kOk;
    case InvocationOutcome::kDegraded:
      return ForensicOutcome::kDegraded;
    case InvocationOutcome::kFailed:
      return ForensicOutcome::kFailed;
    case InvocationOutcome::kShedQueueFull:
      return ForensicOutcome::kShedQueueFull;
    case InvocationOutcome::kShedDeadline:
      return ForensicOutcome::kShedDeadline;
  }
  return ForensicOutcome::kFailed;
}

// Pressure-ladder degradation of the per-invocation prefetch machinery: shrink
// every readahead window and cap the loader's pipeline depth. Null overrides
// (the normal case) return the config untouched, keeping the legacy path
// bit-identical.
ReadaheadConfig ApplyPressure(ReadaheadConfig config, const Platform::PressureOverrides* p) {
  if (p == nullptr || p->readahead_scale >= 1.0) {
    return config;
  }
  const auto scale = [&](PageCount pages) {
    const auto scaled =
        static_cast<uint64_t>(static_cast<double>(pages.value()) * p->readahead_scale);
    return PageCount::FromPages(scaled < 1 ? uint64_t{1} : scaled);
  };
  config.initial_window_pages = scale(config.initial_window_pages);
  config.max_window_pages = scale(config.max_window_pages);
  config.random_window_pages = scale(config.random_window_pages);
  return config;
}

PrefetchConfig ApplyPressure(PrefetchConfig config, const Platform::PressureOverrides* p) {
  if (p == nullptr || p->loader_depth_cap <= 0) {
    return config;
  }
  config.pipeline_depth = std::min(config.pipeline_depth, p->loader_depth_cap);
  config.min_pipeline_depth = std::min(config.min_pipeline_depth, config.pipeline_depth);
  return config;
}

}  // namespace

Platform::Platform(PlatformConfig config)
    : config_(std::move(config)),
      local_disk_(&sim_, config_.disk, config_.seed),
      cpu_(config_.host_cores) {
  FAASNAP_CHECK_OK(config_.layout.Validate());
  storage_.AddDevice(&local_disk_);
  if (config_.remote_disk.has_value()) {
    remote_disk_ = std::make_unique<BlockDevice>(&sim_, *config_.remote_disk,
                                                 config_.seed ^ 0x5eed);
    storage_.AddDevice(remote_disk_.get());
  } else {
    const SnapshotPlacement& placement = config_.placement;
    FAASNAP_CHECK(placement.memory_files == StorageTier::kLocal &&
                  placement.loading_set == StorageTier::kLocal &&
                  placement.reap_ws == StorageTier::kLocal &&
                  "remote placement requires PlatformConfig::remote_disk");
  }
  if (config_.chaos.enabled) {
    chaos_ = std::make_unique<FaultInjector>(&sim_, config_.chaos);
    local_disk_.set_fault_injector(chaos_.get(), 0);
    if (remote_disk_ != nullptr) {
      remote_disk_->set_fault_injector(chaos_.get(), 1);
    }
    store_.set_fault_injector(chaos_.get());
    storage_.ConfigureFaultHandling(&sim_, chaos_.get(), config_.storage_faults);
  }
}

BlockDeviceStats Platform::CombinedDiskStats() const {
  BlockDeviceStats stats = local_disk_.stats();
  if (remote_disk_ != nullptr) {
    stats.read_requests += remote_disk_->stats().read_requests;
    stats.bytes_read += remote_disk_->stats().bytes_read;
  }
  return stats;
}

void Platform::PlaceFile(FileId file, StorageTier tier) {
  if (tier == StorageTier::kRemote) {
    storage_.AssignFile(file, 1);
  }
}

void Platform::DropCaches() { cache_.DropAll(); }

void Platform::SetObservability(SpanTracer* spans, MetricsRegistry* metrics) {
  spans_ = spans;
  metrics_ = metrics;
  // Platform-owned components rewire immediately; per-invocation components
  // (engine, loader, readahead) pick the pointers up in InvokeAsync/Record.
  storage_.set_observability(spans, metrics);
  cache_.set_observability(metrics);
  if (chaos_ != nullptr) {
    chaos_->set_observability(metrics);
    for (int i = 0; i < kInvocationOutcomeCount; ++i) {
      static constexpr std::string_view kOutcomes[kInvocationOutcomeCount] = {
          "ok", "degraded", "failed", "shed_queue_full", "shed_deadline"};
      outcome_counters_[i] =
          metrics != nullptr
              ? metrics->GetCounter("invocations.outcome",
                                    {{"outcome", std::string(kOutcomes[i])}})
              : nullptr;
    }
  }
}

void Platform::CountOutcome(InvocationOutcome outcome) {
  Counter* counter = outcome_counters_[static_cast<int>(outcome)];
  if (counter != nullptr) {
    counter->Add();
  }
}

Status Platform::PlanRestoreMode(const FunctionSnapshot& snapshot, RestoreMode requested,
                                 RestoreMode* effective, Status* demotion_reason) const {
  *effective = requested;
  // Demotion rung: every snapshot mode can fall back to vanilla on-demand paging
  // as long as the (unsanitized) memory file itself is intact.
  auto demote_or_fail = [&](Status why) -> Status {
    if (!store_.Validate(snapshot.memory_vanilla.id).ok()) {
      return why;  // no intact rung below: the invocation fails
    }
    *effective = RestoreMode::kFirecracker;
    *demotion_reason = std::move(why);
    return OkStatus();
  };
  switch (requested) {
    case RestoreMode::kWarm:
    case RestoreMode::kColdBoot:
      return OkStatus();  // no snapshot artifacts involved
    case RestoreMode::kFirecracker:
    case RestoreMode::kCached:
    case RestoreMode::kFaasnapConcurrentOnly:
      // The memory file is the primary artifact; with it gone there is nothing
      // to restore from.
      return store_.Validate(snapshot.memory_vanilla.id);
    case RestoreMode::kReap: {
      RETURN_IF_ERROR(store_.Validate(snapshot.memory_vanilla.id));
      Status ws = store_.Validate(snapshot.reap_ws.id);
      if (!ws.ok()) {
        return demote_or_fail(std::move(ws));
      }
      return OkStatus();
    }
    case RestoreMode::kFaasnapPerRegion:
    case RestoreMode::kFaasnap: {
      Status artifact = store_.Validate(snapshot.memory_sanitized.id);
      if (artifact.ok() && requested == RestoreMode::kFaasnap) {
        artifact = store_.Validate(snapshot.loading_set.id);
      }
      if (!artifact.ok()) {
        return demote_or_fail(std::move(artifact));
      }
      return OkStatus();
    }
  }
  return OkStatus();
}

// Per-invocation state bundle; kept alive by shared_ptr captures until both the
// function and the loader have finished.
struct Platform::InvocationContext {
  InvocationContext(Platform* platform, const FunctionSnapshot& snap, RestoreMode mode_in)
      : space(snap.guest_pages),
        readahead(ApplyPressure(platform->config_.readahead, platform->pressure_)),
        engine(&platform->sim_, &platform->cache_, &platform->storage_, &space, &readahead,
               platform->store_.SizeFn(), platform->config_.host_costs),
        vm(&platform->sim_, &engine, &platform->cpu_, platform->config_.guest.vcpus),
        policy(RestorePolicy::Create(mode_in)),
        loader(&platform->sim_, &platform->cache_, &platform->storage_,
               ApplyPressure(platform->config_.loader, platform->pressure_)) {
    // Levers before observability: lever counters register iff enabled. The
    // record phase (its own engine in Platform::Record) keeps them off so
    // snapshot artifacts never depend on lever settings.
    engine.set_fault_path(platform->config_.fault_path);
    env.sim = &platform->sim_;
    env.cache = &platform->cache_;
    env.storage = &platform->storage_;
    env.space = &space;
    env.engine = &engine;
    env.snapshot = &snap;
    env.config = &platform->config_;
  }

  AddressSpace space;
  ReadaheadPolicy readahead;
  FaultEngine engine;
  Vm vm;
  std::unique_ptr<RestorePolicy> policy;
  PrefetchLoader loader;
  RestoreEnv env;

  InvocationTrace trace;
  SimTime request_time;
  BlockDeviceStats disk_before;
  Duration setup_time;
  // Failure-aware restore: the mode the caller asked for (policy->mode() is the
  // effective one) and, when they differ, the validation error that demoted it.
  RestoreMode requested_mode;
  Status demotion_reason;
};

InvocationReport Platform::ReportShed(const FunctionSnapshot& snapshot,
                                      RestoreMode requested_mode, SimTime arrival_time,
                                      InvocationOutcome outcome, Status reason) {
  FAASNAP_CHECK(outcome == InvocationOutcome::kShedQueueFull ||
                outcome == InvocationOutcome::kShedDeadline);
  if (forensics_ != nullptr) {
    forensics_->OnInvokeBegin();
  }
  InvocationReport report;
  report.function = snapshot.function;
  report.mode = std::string(RestoreModeName(requested_mode));
  report.outcome = outcome;
  report.status = std::move(reason);
  // The whole shed window is queueing: report it as setup so total_time() is
  // the arrival-to-drop latency the client observed.
  report.setup_time = sim_.now() - arrival_time;
  CountOutcome(outcome);
  SpanId invoke_span = kNoSpan;
  if (spans_ != nullptr) {
    // The dispatch child covers the full invoke window, so critical-path
    // analysis attributes a shed arrival entirely to dispatch/queue time.
    invoke_span = spans_->Begin(arrival_time, ObsLane::kDaemon, obsname::kInvoke);
    spans_->Complete(arrival_time, sim_.now(), ObsLane::kDaemon, obsname::kDispatch, 0, 0,
                     invoke_span);
    spans_->Instant(sim_.now(), ObsLane::kDaemon, obsname::kShed,
                    static_cast<uint64_t>(outcome), 0, invoke_span);
    spans_->End(invoke_span, sim_.now(), static_cast<uint64_t>(outcome));
  }
  if (forensics_ != nullptr) {
    forensics_->OnInvokeEnd(invoke_span, ToForensicOutcome(outcome), report.function,
                            sim_.now() - arrival_time);
  }
  if (timeline_ != nullptr) {
    timeline_->Advance(sim_.now());
  }
  return report;
}

void Platform::InvokeAsync(const FunctionSnapshot& snapshot, RestoreMode mode,
                           InvocationTrace trace, std::function<void(InvocationReport)> done) {
  // Validate the snapshot files the requested mode depends on before building
  // any restore state (the daemon checks manifests before handing the files to
  // the VMM). A bad primary artifact demotes to on-demand paging when possible;
  // otherwise the invocation fails with the validation error.
  RestoreMode effective = mode;
  Status demotion_reason;
  const Status plan_status = PlanRestoreMode(snapshot, mode, &effective, &demotion_reason);

  if (forensics_ != nullptr) {
    forensics_->OnInvokeBegin();
  }
  const SimTime request_time = sim_.now();
  // Request dispatch serializes in the daemon: network namespace and tap device
  // creation take the kernel's rtnl mutex, so 64 simultaneous requests queue.
  // This is what drags every system down at high burst parallelism (Figure 10).
  const SimTime dispatched =
      Max(sim_.now(), daemon_busy_until_) + config_.setup_costs.daemon_dispatch;
  daemon_busy_until_ = dispatched;

  if (!plan_status.ok()) {
    // Unrecoverable: the artifacts the mode needs are corrupt and there is no
    // intact fallback. Fail with a typed status instead of restoring from a bad
    // file. The request still pays daemon dispatch (validation runs in the
    // daemon), keeping serialization for overlapping invocations.
    SpanId invoke_span = kNoSpan;
    if (spans_ != nullptr) {
      invoke_span = spans_->Begin(request_time, ObsLane::kDaemon, obsname::kInvoke);
      spans_->Complete(request_time, dispatched, ObsLane::kDaemon, obsname::kDispatch, 0, 0,
                       invoke_span);
    }
    const FunctionSnapshot* snap = &snapshot;
    sim_.Schedule(dispatched, [this, snap, mode, request_time, invoke_span, plan_status,
                               done = std::move(done)]() mutable {
      InvocationReport report;
      report.function = snap->function;
      report.mode = std::string(RestoreModeName(mode));
      report.outcome = InvocationOutcome::kFailed;
      report.status = plan_status;
      report.setup_time = sim_.now() - request_time;
      CountOutcome(report.outcome);
      if (spans_ != nullptr) {
        spans_->End(invoke_span, sim_.now(), static_cast<uint64_t>(report.outcome));
      }
      if (forensics_ != nullptr) {
        forensics_->OnInvokeEnd(invoke_span, ToForensicOutcome(report.outcome),
                                report.function, sim_.now() - request_time);
      }
      if (timeline_ != nullptr) {
        timeline_->Advance(sim_.now());
      }
      done(std::move(report));
    });
    return;
  }

  auto ctx = std::make_shared<InvocationContext>(this, snapshot, effective);
  ctx->requested_mode = mode;
  ctx->demotion_reason = std::move(demotion_reason);
  ctx->engine.set_observability(spans_, metrics_);
  ctx->loader.set_observability(spans_, metrics_);
  if (chaos_ != nullptr) {
    ctx->loader.set_fault_injector(chaos_.get());
  }
  ctx->readahead.set_observability(metrics_);
  ctx->env.spans = spans_;
  ctx->trace = std::move(trace);
  ctx->request_time = request_time;
  ctx->disk_before = CombinedDiskStats();

  // Span skeleton for this invocation (see obs/observability.h for the tree).
  // Recording is passive, so opening spans ahead of their wall time is fine.
  SpanId invoke_span = kNoSpan;
  SpanId setup_span = kNoSpan;
  if (spans_ != nullptr) {
    invoke_span = spans_->Begin(ctx->request_time, ObsLane::kDaemon, obsname::kInvoke);
    spans_->Complete(ctx->request_time, dispatched, ObsLane::kDaemon, obsname::kDispatch, 0, 0,
                     invoke_span);
    setup_span = spans_->Begin(dispatched, ObsLane::kDaemon, obsname::kSetup, 0, 0, invoke_span);
    ctx->loader.set_parent_span(invoke_span);
    ctx->env.setup_span = setup_span;
  }

  const FunctionSnapshot* snap = &snapshot;
  sim_.Schedule(dispatched, [this, ctx] {
    // Concurrent paging: the daemon's loader starts the moment the request is
    // dispatched, overlapping VMM restore and guest execution (section 4.2).
    std::vector<PrefetchItem> plan = ctx->policy->PrefetchPlan(ctx->env);
    if (!plan.empty()) {
      ctx->loader.Start(std::move(plan), [ctx] {});
    }
  });
  sim_.Schedule(dispatched + ctx->policy->BaseSetupCost(ctx->env),
                [this, ctx, snap, invoke_span, setup_span, done = std::move(done)]() mutable {
    ctx->policy->SetupMemory(&ctx->env, [this, ctx, snap, invoke_span, setup_span,
                                         done = std::move(done)]() mutable {
      ctx->setup_time = sim_.now() - ctx->request_time;
      SpanId invocation_span = kNoSpan;
      if (spans_ != nullptr) {
        spans_->End(setup_span, sim_.now(), ctx->space.mmap_call_count());
        spans_->Instant(sim_.now(), ObsLane::kDaemon, obsname::kSetupDone,
                        ctx->space.mmap_call_count(), 0, setup_span);
        invocation_span =
            spans_->Begin(sim_.now(), ObsLane::kVcpu, obsname::kInvocation, 0, 0, invoke_span);
        ctx->engine.set_invocation_span(invocation_span);
      }
      ctx->vm.RunInvocation(ctx->trace, [this, ctx, snap, invoke_span, invocation_span,
                                         done = std::move(done)](
                                            Vm::InvocationResult result) mutable {
        InvocationReport report;
        report.function = snap->function;
        report.mode = std::string(RestoreModeName(ctx->requested_mode));
        report.setup_time = ctx->setup_time;
        report.invocation_time = result.elapsed;
        report.faults = ctx->engine.metrics();
        if (!ctx->policy->blocking_fetch_bytes().is_zero()) {
          report.fetch_time = ctx->policy->blocking_fetch_time();
          report.fetch_bytes = ctx->policy->blocking_fetch_bytes();
        } else if (ctx->loader.started()) {
          report.fetch_time = ctx->loader.finished()
                                  ? ctx->loader.fetch_time()
                                  : sim_.now() - ctx->request_time;
          report.fetch_bytes = ctx->loader.fetched_bytes();
        }
        const FaultMetrics& m = report.faults;
        report.guest_pagefault_bytes = PagesToBytes(
            PageCount::FromPages(static_cast<uint64_t>(m.count(FaultClass::kMajor) +
                                                       m.count(FaultClass::kInFlightWait) +
                                                       m.count(FaultClass::kUffdHandled))));
        report.mmap_calls = ctx->space.mmap_call_count();
        report.disk = CombinedDiskStats() - ctx->disk_before;
        report.anon_resident_pages =
            ctx->space.resident_anonymous_pages() + ctx->space.anon_copied_pages();
        report.page_cache_pages = PageCount::FromPages(cache_.present_page_count());
        // Outcome ladder, most severe first: a terminal error aborts the VM
        // (kFailed); otherwise any fallback taken along the way — demoted
        // restore mode, a policy's in-setup degradation, or a partial prefetch
        // — marks the invocation kDegraded with the first error observed.
        report.prefetch_failed_pages = ctx->loader.failed_pages();
        if (!result.status.ok()) {
          report.outcome = InvocationOutcome::kFailed;
          report.status = std::move(result.status);
        } else if (ctx->policy->mode() != ctx->requested_mode) {
          report.outcome = InvocationOutcome::kDegraded;
          report.degraded_mode = std::string(RestoreModeName(ctx->policy->mode()));
          report.status = ctx->demotion_reason;
        } else if (!ctx->env.degrade_status.ok()) {
          report.outcome = InvocationOutcome::kDegraded;
          report.degraded_mode = ctx->env.degrade_label;
          report.status = ctx->env.degrade_status;
        } else if (ctx->loader.started() && !ctx->loader.status().ok()) {
          report.outcome = InvocationOutcome::kDegraded;
          report.degraded_mode = "partial-prefetch";
          report.status = ctx->loader.status();
        }
        CountOutcome(report.outcome);
        if (spans_ != nullptr) {
          if (report.outcome == InvocationOutcome::kDegraded) {
            spans_->Instant(sim_.now(), ObsLane::kDaemon, obsname::kDegraded, 0, 0, invoke_span);
          }
          spans_->End(invocation_span, sim_.now(),
                      static_cast<uint64_t>(result.elapsed.nanos()));
          spans_->End(invoke_span, sim_.now(), static_cast<uint64_t>(report.outcome));
        }
        if (forensics_ != nullptr) {
          forensics_->OnInvokeEnd(invoke_span, ToForensicOutcome(report.outcome),
                                  report.function, sim_.now() - ctx->request_time);
        }
        if (timeline_ != nullptr) {
          timeline_->Advance(sim_.now());
        }
        done(std::move(report));
      });
    });
  });
}

InvocationReport Platform::Invoke(const FunctionSnapshot& snapshot, RestoreMode mode,
                                  const TraceGenerator& generator, const WorkloadInput& input) {
  InvocationReport out;
  bool finished = false;
  InvokeAsync(snapshot, mode, generator.Generate(input), [&](InvocationReport report) {
    out = std::move(report);
    finished = true;
  });
  sim_.Run();
  FAASNAP_CHECK(finished);
  return out;
}

FunctionSnapshot Platform::Record(const TraceGenerator& generator, const WorkloadInput& input) {
  // The fault model targets the restore path: by default the record phase runs
  // with read/stall injection disarmed so snapshot production itself cannot
  // abort. (File corruption is decided per file id and is unaffected — freshly
  // recorded artifacts may still be born bad.)
  const bool spare_record = chaos_ != nullptr && config_.chaos.spare_record_phase;
  if (spare_record) {
    chaos_->set_armed(false);
  }
  const GuestLayout& layout = config_.layout;
  FunctionSnapshot snap;
  snap.function = generator.spec().name;
  snap.guest_pages = layout.total_pages;

  // The record phase restores the function's "clean" snapshot with vanilla
  // Firecracker paging (Figure 5) and runs the invocation with both recorders
  // attached; the guest's execution is identical for every downstream policy.
  MemoryFile clean;
  clean.total_pages = layout.total_pages;
  clean.nonzero = generator.CleanSnapshotNonZero();
  clean.id = store_.Register(snap.function + ".clean.mem", clean.total_pages);
  PlaceFile(clean.id, config_.placement.memory_files);

  AddressSpace space(layout.total_pages);
  ReadaheadPolicy readahead(config_.readahead);
  FaultEngine engine(&sim_, &cache_, &storage_, &space, &readahead, store_.SizeFn(),
                     config_.host_costs);
  const SpanId record_span =
      spans_ != nullptr
          ? spans_->Begin(sim_.now(), ObsLane::kDaemon, obsname::kRecord,
                          layout.total_pages.value())
          : kNoSpan;
  engine.set_observability(spans_, metrics_);
  engine.set_invocation_span(record_span);
  readahead.set_observability(metrics_);
  space.Map({.guest = {0, layout.total_pages.value()},
             .kind = BackingKind::kFile,
             .file = clean.id,
             .file_start = 0});

  Vm vm(&sim_, &engine, &cpu_, config_.guest.vcpus);
  FaasnapRecorder faasnap_recorder(&cache_, clean.id, config_.ws_group_size);
  ReapRecorder reap_recorder;
  vm.set_access_observer([&](PageIndex page, FaultClass cls) {
    faasnap_recorder.OnAccess(page, cls);
    reap_recorder.OnAccess(page, cls);
  });

  InvocationTrace trace = generator.Generate(input);
  PageRangeSet written;
  bool finished = false;
  vm.RunInvocation(trace, [&](Vm::InvocationResult result) {
    written = std::move(result.written_pages);
    finished = true;
  });
  sim_.Run();
  FAASNAP_CHECK(finished);
  if (spans_ != nullptr) {
    spans_->End(record_span, sim_.now());
  }

  // New memory files. Vanilla: dirty pages keep their contents (freed transients
  // remain non-zero garbage). Sanitized: the modified guest kernel zeroed freed
  // pages, so they fall out of the non-zero set (section 4.5).
  snap.memory_vanilla.total_pages = layout.total_pages;
  snap.memory_vanilla.nonzero = clean.nonzero.Union(written);
  snap.memory_vanilla.id = store_.Register(snap.function + ".mem", layout.total_pages);
  PlaceFile(snap.memory_vanilla.id, config_.placement.memory_files);
  snap.memory_sanitized.total_pages = layout.total_pages;
  snap.memory_sanitized.nonzero = snap.memory_vanilla.nonzero.Subtract(trace.freed_at_end);
  snap.memory_sanitized.id = store_.Register(snap.function + ".smem", layout.total_pages);
  PlaceFile(snap.memory_sanitized.id, config_.placement.memory_files);

  snap.reap_ws = std::move(reap_recorder).Finish();
  snap.reap_ws.id = store_.Register(snap.function + ".reapws", snap.reap_ws.size_pages());
  PlaceFile(snap.reap_ws.id, config_.placement.reap_ws);

  snap.ws_groups = faasnap_recorder.Finish();
  snap.loading_set =
      BuildLoadingSet(snap.ws_groups, snap.memory_sanitized, config_.loading_set);
  snap.loading_set.id = store_.Register(snap.function + ".lset", snap.loading_set.total_pages);
  PlaceFile(snap.loading_set.id, config_.placement.loading_set);

  snap.record_touched = trace.TouchedPages();

  // Snapshot security (section 7.4): wipe registered secret pages in both memory
  // files. Zeroed secrets land in the released/unused sets, so every restore maps
  // them to fresh anonymous memory and restored VMs cannot share PRNG state.
  if (!config_.wipe_secret_pages.is_zero()) {
    // The guest registers its PRNG state, which lives with the runtime: model it
    // as the first secret_pages of the runtime span.
    snap.wipe_regions.Add(layout.stable.first, config_.wipe_secret_pages.value());
    for (const PageRange& r : snap.wipe_regions.ranges()) {
      snap.memory_vanilla.nonzero.Remove(r.first, r.count);
      snap.memory_sanitized.nonzero.Remove(r.first, r.count);
    }
    const FileId loading_set_id = snap.loading_set.id;
    snap.loading_set =
        BuildLoadingSet(snap.ws_groups, snap.memory_sanitized, config_.loading_set);
    snap.loading_set.id = loading_set_id;
    store_.Resize(loading_set_id, snap.loading_set.total_pages);
  }

  // The methodology drops all page caches before each test (section 6.1).
  DropCaches();
  if (spare_record) {
    chaos_->set_armed(true);
  }
  if (forensics_ != nullptr) {
    // The record phase buffers spans like any other: nothing retains them, so
    // recycle as soon as the phase's spans are all closed.
    forensics_->MaybeRecycle();
  }
  if (timeline_ != nullptr) {
    timeline_->Advance(sim_.now());
  }
  return snap;
}

}  // namespace faasnap

// Multi-function host scheduling: warm pools, memory budgets, and
// evict-to-snapshot (paper sections 2.1 and 7.1).
//
// A FaaS host serves many functions under a fixed memory budget. Idle VMs stay
// warm until a keep-alive horizon or until the pool overflows, at which point the
// least-recently-used VM is evicted — and, with snapshots, eviction is cheap:
// the next invocation restores from the snapshot instead of cold-booting
// ("snapshots can... replace warm VMs when their utilization is low (e.g., on
// eviction)"). The Azure traces cited by the paper motivate the arrival mix:
// few functions are hot, most are invoked rarely — modeled here with a Zipf
// popularity distribution over Poisson arrivals.
//
// Two serving disciplines share the engine:
//
//   Closed loop (default) — invocations are admitted serially in arrival order
//   (one running VM at a time, the next gap measured from the previous
//   completion); this isolates the policy effects from CPU contention, which
//   Figure 10 covers. Bit-identical to the historical behavior per seed.
//
//   Open loop (config.open_loop) — arrivals land at absolute virtual times
//   regardless of completions, up to admission.max_concurrency invocations run
//   concurrently, and overload is handled by the admission layer: a bounded
//   deadline queue with typed shedding (src/runtime/admission.h) plus a
//   pressure ladder that degrades readahead, restore mode, and keep-alive
//   before any work is dropped.

#ifndef FAASNAP_SRC_RUNTIME_HOST_SCHEDULER_H_
#define FAASNAP_SRC_RUNTIME_HOST_SCHEDULER_H_

#include <list>
#include <memory>
#include <vector>

#include "src/common/histogram.h"
#include "src/runtime/admission.h"
#include "src/runtime/arrivals.h"
#include "src/runtime/platform.h"
#include "src/runtime/serve_common.h"

namespace faasnap {

struct HostSchedulerConfig {
  // Total memory the warm pool may pin (working sets of idle + running VMs).
  ByteCount warm_pool_budget_bytes = GiB(1);
  // Idle VMs older than this are reclaimed even if the pool has room.
  Duration keep_warm = Duration::Seconds(600);
  // How a warm miss is served (snapshot restore or full cold boot).
  RestoreMode miss_mode = RestoreMode::kFaasnap;
  // Snapshot quarantine: after this many consecutive failed restores of one
  // function's snapshot, misses bypass it (cold boot) for `quarantine_backoff`
  // instead of retrying a snapshot that keeps failing.
  int quarantine_failure_threshold = 3;
  Duration quarantine_backoff = Duration::Seconds(60);

  // Open-loop serving: arrivals at absolute times, concurrent invocations,
  // admission control, and the pressure-degradation ladder. Off by default —
  // the closed loop above is preserved bit-identically.
  bool open_loop = false;
  AdmissionConfig admission;
  PressureLadderConfig ladder;
};

struct HostSchedulerStats {
  int64_t invocations = 0;        // accepted arrivals that ran to completion
  int64_t warm_hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;          // pool-pressure evictions (budget overflow)
  int64_t expirations = 0;        // keep-alive horizon reclaims
  int64_t restore_failures = 0;   // invocations that ended kFailed on a miss
  int64_t quarantines = 0;        // snapshots benched after repeated failures
  int64_t quarantined_serves = 0; // misses served by cold boot while benched
  RunningStats latency_ms;
  RunningStats miss_latency_ms;
  // Time-averaged bytes pinned by the warm pool across the run (open loop also
  // counts the predicted bytes of in-flight restores).
  double avg_pool_bytes = 0;
  Duration span;
  // Per registered function: hit counts (hot functions should dominate).
  std::vector<int64_t> per_function_hits;
  std::vector<int64_t> per_function_invocations;

  // Open-loop fields; all zero in closed-loop runs.
  int64_t arrivals = 0;            // offered arrivals (== invocations + sheds)
  int64_t shed_queue_full = 0;
  int64_t shed_deadline = 0;
  int64_t queued = 0;              // admitted after a non-zero queue wait
  int64_t fairness_deferrals = 0;
  int max_in_flight = 0;
  size_t max_queue_depth = 0;
  RunningStats queue_wait_ms;      // over admitted arrivals
  // Latency distribution of accepted work only (sheds excluded), for tail
  // assertions under overload. Buckets from 1us; ~1us .. >1s.
  Log2Histogram accepted_latency{Duration::Micros(1), /*num_buckets=*/21};
  // Pressure ladder bookkeeping.
  int64_t pressure_demotions = 0;  // miss restores demoted to kReap at L2+
  int64_t pressure_transitions = 0;
  int max_pressure_level = 0;
  int final_pressure_level = 0;    // after the run drains; 0 = recovered
  // Virtual time between the last arrival and the last completion (how long
  // the host takes to drain its backlog after the offered load stops).
  Duration drain_time;

  double warm_hit_rate() const {
    return invocations == 0 ? 0.0
                            : static_cast<double>(warm_hits) / static_cast<double>(invocations);
  }
  int64_t shed() const { return shed_queue_full + shed_deadline; }
};

class HostScheduler {
 public:
  // `platform` must outlive the scheduler.
  HostScheduler(Platform* platform, HostSchedulerConfig config);
  ~HostScheduler();  // out of line: OpenLoopState is incomplete here

  // Registers a function: records its snapshot on the platform and returns its
  // index for Arrival::function_index.
  size_t AddFunction(const FunctionSpec& spec);

  // Registers an already-recorded function without re-running the record
  // phase. Both pointers must outlive the scheduler; the snapshot must have
  // been recorded on this scheduler's platform.
  size_t AddRecordedFunction(const FunctionSnapshot* snapshot, const TraceGenerator* generator);

  // Serves `arrivals` and returns the aggregate statistics: serially in the
  // closed loop, or at absolute virtual times under admission control when
  // config.open_loop is set.
  HostSchedulerStats Run(const std::vector<Arrival>& arrivals);

  // --- Incremental open-loop driving (the cluster layer's shards). ---
  //
  // RunOpenLoop with config.open_loop is exactly BeginOpenLoop() + OfferAt()
  // per timed arrival + sim()->Run() + FinishOpenLoop(). A cluster shard
  // instead interleaves OfferAt batches (arrivals routed at barrier epochs)
  // with bounded sim->RunUntil(epoch_end) advances. Offer times must be
  // non-decreasing and >= the platform clock; content seeds are drawn when
  // the arrival event fires, which is offer order, so the input stream is
  // identical whether the schedule was offered up front or epoch by epoch.
  void BeginOpenLoop();
  void OfferAt(size_t function_index, SimTime at);
  // Finalizes and returns the run's statistics. Every offered arrival must
  // have resolved (drive the sim until OpenLoopIdle() first).
  HostSchedulerStats FinishOpenLoop();

  // Dispatcher-visible surface, read by the cluster router at barrier epochs
  // only (between epochs the shard's worker thread owns this object, and the
  // values are deterministic only once it is parked at the barrier).
  int64_t OutstandingLoad() const;  // admitted in-flight + queued arrivals
  bool OpenLoopIdle() const;        // no in-flight or queued admitted work
  size_t function_count() const { return entries_.size(); }
  // The function's VM currently sits in the warm pool (a routed arrival would
  // warm-hit), resp. has completed at least one invocation on this host (its
  // snapshot pages are plausibly still in the host page cache).
  bool FunctionWarm(size_t index) const { return entries_[index]->warm; }
  bool FunctionEverServed(size_t index) const { return entries_[index]->served_once; }
  ByteCount pool_bytes() const { return pool_bytes_; }
  ByteCount pool_budget() const { return config_.warm_pool_budget_bytes; }

  const FunctionSnapshot& snapshot(size_t index) const { return *entries_[index]->snapshot; }

 private:
  struct Entry {
    // Owned when registered via AddFunction; raw views used everywhere.
    std::unique_ptr<TraceGenerator> owned_generator;
    std::unique_ptr<FunctionSnapshot> owned_snapshot;
    const TraceGenerator* generator = nullptr;
    const FunctionSnapshot* snapshot = nullptr;
    ByteCount ws_bytes;
    // Warm-pool state. `lru_it` points into lru_ iff warm.
    bool warm = false;
    SimTime last_used;
    std::list<Entry*>::iterator lru_it;
    // In-flight invocations of this function (open loop only).
    int running = 0;
    // At least one invocation of this function completed on this host.
    bool served_once = false;
    // Snapshot quarantine state (shared serve bookkeeping).
    ServeHealth health;
  };

  // Live state of one open-loop run, heap-held between BeginOpenLoop and
  // FinishOpenLoop so the admission hooks and completion callbacks can refer
  // to it stably across epochs.
  struct OpenLoopState;

  HostSchedulerStats RunClosedLoop(const std::vector<Arrival>& arrivals);
  HostSchedulerStats RunOpenLoop(const std::vector<Arrival>& arrivals);

  // Open-loop engine internals; see host_scheduler.cc.
  void OpenLoopArrival(size_t function_index);
  void OpenLoopAccrue(SimTime now);
  void OpenLoopUpdateLadder();
  void OpenLoopShed(const AdmissionRequest& request, InvocationOutcome outcome, Duration wait);
  void OpenLoopRun(const AdmissionRequest& request, Duration wait);
  void OpenLoopComplete(const AdmissionRequest& request, const ServeParams& params,
                        const PlannedServe& planned, bool warm, const InvocationReport& report);

  // Warm-pool bookkeeping: the pool byte total and the LRU list (front =
  // least recently used) are maintained incrementally — marking a VM warm,
  // refreshing its recency, or evicting it is O(1), instead of the historical
  // full rescan of every entry per eviction step.
  void MarkWarm(Entry* entry, SimTime now);
  void MarkCold(Entry* entry);
  // Reclaims VMs idle past `keep_warm` and, if needed, LRU-evicts until
  // `needed` bytes fit in the budget.
  void ReclaimAndEvict(ByteCount needed, Duration keep_warm, HostSchedulerStats* stats);
  // Best-effort: evicts idle LRU VMs until at least `bytes` are unpinned (the
  // admission controller's make_room hook).
  void EvictIdleBytes(ByteCount bytes, HostSchedulerStats* stats);

  Platform* platform_;
  HostSchedulerConfig config_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::list<Entry*> lru_;      // warm entries, ascending last_used
  ByteCount pool_bytes_;       // sum of ws_bytes over warm entries
  std::unique_ptr<OpenLoopState> open_loop_;  // live between Begin/FinishOpenLoop
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_RUNTIME_HOST_SCHEDULER_H_

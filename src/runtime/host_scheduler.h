// Multi-function host scheduling: warm pools, memory budgets, and
// evict-to-snapshot (paper sections 2.1 and 7.1).
//
// A FaaS host serves many functions under a fixed memory budget. Idle VMs stay
// warm until a keep-alive horizon or until the pool overflows, at which point the
// least-recently-used VM is evicted — and, with snapshots, eviction is cheap:
// the next invocation restores from the snapshot instead of cold-booting
// ("snapshots can... replace warm VMs when their utilization is low (e.g., on
// eviction)"). The Azure traces cited by the paper motivate the arrival mix:
// few functions are hot, most are invoked rarely — modeled here with a Zipf
// popularity distribution over Poisson arrivals.
//
// Invocations are admitted serially in arrival order (one running VM at a time);
// this isolates the policy effects from CPU contention, which Figure 10 covers.

#ifndef FAASNAP_SRC_RUNTIME_HOST_SCHEDULER_H_
#define FAASNAP_SRC_RUNTIME_HOST_SCHEDULER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/histogram.h"
#include "src/runtime/platform.h"

namespace faasnap {

struct HostSchedulerConfig {
  // Total memory the warm pool may pin (working sets of idle + running VMs).
  uint64_t warm_pool_budget_bytes = GiB(1);
  // Idle VMs older than this are reclaimed even if the pool has room.
  Duration keep_warm = Duration::Seconds(600);
  // How a warm miss is served (snapshot restore or full cold boot).
  RestoreMode miss_mode = RestoreMode::kFaasnap;
  // Snapshot quarantine: after this many consecutive failed restores of one
  // function's snapshot, misses bypass it (cold boot) for `quarantine_backoff`
  // instead of retrying a snapshot that keeps failing.
  int quarantine_failure_threshold = 3;
  Duration quarantine_backoff = Duration::Seconds(60);
};

// One request: which registered function, arriving `gap` after the previous one.
struct Arrival {
  size_t function_index = 0;
  Duration gap;
};

// Zipf(s)-popular function choice with exponential inter-arrival gaps: the
// hot/cold skew of the Azure traces (section 2.1). Deterministic per seed.
std::vector<Arrival> ZipfArrivals(size_t functions, int count, double zipf_s,
                                  Duration mean_gap, uint64_t seed);

struct HostSchedulerStats {
  int64_t invocations = 0;
  int64_t warm_hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;          // pool-pressure evictions (budget overflow)
  int64_t expirations = 0;        // keep-alive horizon reclaims
  int64_t restore_failures = 0;   // invocations that ended kFailed on a miss
  int64_t quarantines = 0;        // snapshots benched after repeated failures
  int64_t quarantined_serves = 0; // misses served by cold boot while benched
  RunningStats latency_ms;
  RunningStats miss_latency_ms;
  // Time-averaged bytes pinned by the warm pool across the run.
  double avg_pool_bytes = 0;
  Duration span;
  // Per registered function: hit counts (hot functions should dominate).
  std::vector<int64_t> per_function_hits;
  std::vector<int64_t> per_function_invocations;

  double warm_hit_rate() const {
    return invocations == 0 ? 0.0
                            : static_cast<double>(warm_hits) / static_cast<double>(invocations);
  }
};

class HostScheduler {
 public:
  // `platform` must outlive the scheduler.
  HostScheduler(Platform* platform, HostSchedulerConfig config);

  // Registers a function: records its snapshot on the platform and returns its
  // index for Arrival::function_index.
  size_t AddFunction(const FunctionSpec& spec);

  // Serves `arrivals` in order and returns the aggregate statistics.
  HostSchedulerStats Run(const std::vector<Arrival>& arrivals);

  const FunctionSnapshot& snapshot(size_t index) const { return *entries_[index]->snapshot; }

 private:
  struct Entry {
    std::unique_ptr<TraceGenerator> generator;
    std::unique_ptr<FunctionSnapshot> snapshot;
    uint64_t ws_bytes = 0;
    // Warm-pool state.
    bool warm = false;
    SimTime last_used;
    // Quarantine state: consecutive failed snapshot restores, and until when
    // misses should avoid the snapshot.
    int consecutive_failures = 0;
    SimTime quarantined_until;
  };

  // Reclaims expired VMs and, if needed, LRU-evicts until `needed` bytes fit.
  void ReclaimAndEvict(uint64_t needed, HostSchedulerStats* stats);
  uint64_t pool_bytes() const;

  Platform* platform_;
  HostSchedulerConfig config_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_RUNTIME_HOST_SCHEDULER_H_

#include "src/runtime/host_scheduler.h"

#include <algorithm>
#include <utility>

#include "src/obs/observability.h"

namespace faasnap {

namespace {

// Miss modes the pressure ladder may demote to WS-only REAP at L2+: anything
// that prefetches or loads beyond the recorded working set. Warm/cold-boot
// serves and REAP itself have nothing to shed.
bool DemotableToReap(RestoreMode mode) {
  return mode == RestoreMode::kFaasnap || mode == RestoreMode::kFaasnapPerRegion ||
         mode == RestoreMode::kFaasnapConcurrentOnly || mode == RestoreMode::kCached;
}

Duration ScaleDuration(Duration d, double scale) {
  if (scale >= 1.0) {
    return d;
  }
  return Duration::Nanos(static_cast<int64_t>(static_cast<double>(d.nanos()) * scale));
}

}  // namespace

HostScheduler::HostScheduler(Platform* platform, HostSchedulerConfig config)
    : platform_(platform), config_(config) {
  FAASNAP_CHECK(platform_ != nullptr);
  FAASNAP_CHECK(!config_.warm_pool_budget_bytes.is_zero());
}

size_t HostScheduler::AddFunction(const FunctionSpec& spec) {
  auto entry = std::make_unique<Entry>();
  entry->owned_generator =
      std::make_unique<TraceGenerator>(spec, platform_->config().layout);
  entry->owned_snapshot = std::make_unique<FunctionSnapshot>(
      platform_->Record(*entry->owned_generator, MakeInputA(spec)));
  entry->generator = entry->owned_generator.get();
  entry->snapshot = entry->owned_snapshot.get();
  entry->ws_bytes =
      PagesToBytes(PageCount::FromPages(entry->snapshot->record_touched.page_count()));
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

size_t HostScheduler::AddRecordedFunction(const FunctionSnapshot* snapshot,
                                          const TraceGenerator* generator) {
  FAASNAP_CHECK(snapshot != nullptr && generator != nullptr);
  auto entry = std::make_unique<Entry>();
  entry->generator = generator;
  entry->snapshot = snapshot;
  entry->ws_bytes = PagesToBytes(PageCount::FromPages(snapshot->record_touched.page_count()));
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

void HostScheduler::MarkWarm(Entry* entry, SimTime now) {
  if (entry->warm) {
    lru_.erase(entry->lru_it);
  } else {
    entry->warm = true;
    pool_bytes_ += entry->ws_bytes;
  }
  entry->last_used = now;
  lru_.push_back(entry);
  entry->lru_it = std::prev(lru_.end());
}

void HostScheduler::MarkCold(Entry* entry) {
  if (!entry->warm) {
    return;
  }
  entry->warm = false;
  FAASNAP_CHECK(pool_bytes_ >= entry->ws_bytes);
  pool_bytes_ -= entry->ws_bytes;
  lru_.erase(entry->lru_it);
}

void HostScheduler::ReclaimAndEvict(ByteCount needed, Duration keep_warm,
                                    HostSchedulerStats* stats) {
  const SimTime now = platform_->sim()->now();
  // Keep-alive horizon first. The LRU list is ordered by last_used, so the
  // expired entries are exactly its prefix.
  while (!lru_.empty() && now - lru_.front()->last_used > keep_warm) {
    MarkCold(lru_.front());
    stats->expirations++;
  }
  // LRU eviction under pool pressure ("evict to snapshot"). If nothing is left
  // to evict, the new VM may exceed the budget alone.
  while (pool_bytes_ + needed > config_.warm_pool_budget_bytes && !lru_.empty()) {
    MarkCold(lru_.front());
    stats->evictions++;
  }
}

void HostScheduler::EvictIdleBytes(ByteCount bytes, HostSchedulerStats* stats) {
  ByteCount freed;
  while (freed < bytes && !lru_.empty()) {
    freed += lru_.front()->ws_bytes;
    MarkCold(lru_.front());
    stats->evictions++;
  }
}

HostSchedulerStats HostScheduler::Run(const std::vector<Arrival>& arrivals) {
  return config_.open_loop ? RunOpenLoop(arrivals) : RunClosedLoop(arrivals);
}

HostSchedulerStats HostScheduler::RunClosedLoop(const std::vector<Arrival>& arrivals) {
  HostSchedulerStats stats;
  stats.per_function_hits.assign(entries_.size(), 0);
  stats.per_function_invocations.assign(entries_.size(), 0);
  Simulation* sim = platform_->sim();
  const SimTime span_start = sim->now();
  SimTime last_completion = sim->now();
  double pool_byte_time = 0;
  uint64_t arrival_seed = 0x5c4ed;
  const ServeCounters counters{&stats.restore_failures, &stats.quarantines,
                               &stats.quarantined_serves};

  MetricsRegistry* metrics = platform_->metrics();
  Counter* warm_hits_metric = nullptr;
  Counter* misses_metric = nullptr;
  Gauge* pool_gauge = nullptr;
  if (metrics != nullptr) {
    warm_hits_metric = metrics->GetCounter("scheduler.warm_hits");
    misses_metric = metrics->GetCounter("scheduler.misses");
    pool_gauge = metrics->GetGauge("scheduler.pool_bytes");
  }

  for (const Arrival& arrival : arrivals) {
    FAASNAP_CHECK(arrival.function_index < entries_.size());
    const SimTime at = last_completion + arrival.gap;
    const SimTime before = sim->now();
    sim->RunUntil(at);
    pool_byte_time += static_cast<double>(pool_bytes_.value()) * (sim->now() - before).seconds();

    Entry& entry = *entries_[arrival.function_index];
    ReclaimAndEvict(entry.warm ? ByteCount::Zero() : entry.ws_bytes, config_.keep_warm, &stats);
    const bool warm = entry.warm;
    if (!warm) {
      // Cold pool slot: this function's pages are not resident; other tenants
      // also recycled the page cache while we idled.
      platform_->DropCaches();
    }

    WorkloadInput input = MakeInputA(entry.generator->spec());
    if (!entry.generator->spec().fixed_input) {
      input.content_seed = ++arrival_seed;
    }
    ServeParams params;
    params.warm = warm;
    params.miss_mode = config_.miss_mode;
    params.quarantine_failure_threshold = config_.quarantine_failure_threshold;
    params.quarantine_backoff = config_.quarantine_backoff;
    params.function_index = arrival.function_index;
    const PlannedServe planned = BeginServe(platform_, params, &entry.health, counters);
    bool done = false;
    Duration latency;
    InvocationOutcome outcome = InvocationOutcome::kOk;
    platform_->InvokeAsync(*entry.snapshot, planned.mode,
                           entry.generator->Generate(input), [&](InvocationReport report) {
                             latency = report.total_time();
                             outcome = report.outcome;
                             done = true;
                           });
    sim->Run();
    FAASNAP_CHECK(done);
    // The serve span ends (and quarantine bookkeeping stamps) at the
    // post-drain clock, as the serial loop always has.
    FinishServe(platform_, planned, outcome, params, &entry.health, counters);

    stats.invocations++;
    stats.per_function_invocations[arrival.function_index]++;
    if (warm) {
      stats.warm_hits++;
      stats.per_function_hits[arrival.function_index]++;
    } else {
      stats.misses++;
      stats.miss_latency_ms.Record(latency.millis());
    }
    stats.latency_ms.Record(latency.millis());
    pool_byte_time +=
        static_cast<double>((pool_bytes_ + (warm ? ByteCount::Zero() : entry.ws_bytes)).value()) *
        latency.seconds();

    if (warm_hits_metric != nullptr) {
      (warm ? warm_hits_metric : misses_metric)->Add(1);
    }

    // A failed invocation leaves no VM behind to keep warm.
    if (outcome != InvocationOutcome::kFailed) {
      MarkWarm(&entry, sim->now());
    } else {
      MarkCold(&entry);
      entry.last_used = sim->now();
    }
    last_completion = sim->now();
    if (pool_gauge != nullptr) {
      pool_gauge->Set(static_cast<double>(pool_bytes_.value()));
    }
  }

  stats.span = sim->now() - span_start;
  if (stats.span > Duration::Zero()) {
    stats.avg_pool_bytes = pool_byte_time / stats.span.seconds();
  }
  if (metrics != nullptr) {
    metrics->GetCounter("scheduler.evictions")->Add(stats.evictions);
    metrics->GetCounter("scheduler.expirations")->Add(stats.expirations);
  }
  return stats;
}

HostSchedulerStats HostScheduler::RunOpenLoop(const std::vector<Arrival>& arrivals) {
  HostSchedulerStats stats;
  stats.per_function_hits.assign(entries_.size(), 0);
  stats.per_function_invocations.assign(entries_.size(), 0);
  Simulation* sim = platform_->sim();
  FaultInjector* chaos = platform_->chaos();
  const SimTime span_start = sim->now();
  const ServeCounters counters{&stats.restore_failures, &stats.quarantines,
                               &stats.quarantined_serves};

  // Absolute arrival times; chaos burst windows compress the offered gaps.
  const std::vector<TimedArrival> schedule = BuildOpenLoopSchedule(arrivals, span_start, chaos);
  for (const TimedArrival& timed : schedule) {
    FAASNAP_CHECK(timed.function_index < entries_.size());
  }

  // Per-arrival content seeds, drawn in schedule order so the input stream
  // does not depend on dispatch interleaving.
  std::vector<uint64_t> seeds(schedule.size(), 0);
  uint64_t arrival_seed = 0x5c4ed;
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (!entries_[schedule[i].function_index]->generator->spec().fixed_input) {
      seeds[i] = ++arrival_seed;
    }
  }

  MetricsRegistry* metrics = platform_->metrics();
  Counter* warm_hits_metric = nullptr;
  Counter* misses_metric = nullptr;
  Gauge* pool_gauge = nullptr;
  Counter* shed_metrics[2] = {};  // queue_full, deadline — open-loop runs only
  if (metrics != nullptr) {
    warm_hits_metric = metrics->GetCounter("scheduler.warm_hits");
    misses_metric = metrics->GetCounter("scheduler.misses");
    pool_gauge = metrics->GetGauge("scheduler.pool_bytes");
    shed_metrics[0] = metrics->GetCounter("scheduler.shed", {{"reason", "queue_full"}});
    shed_metrics[1] = metrics->GetCounter("scheduler.shed", {{"reason", "deadline"}});
  }

  PressureLadder ladder(config_.ladder);
  Platform::PressureOverrides overrides;
  platform_->set_pressure_overrides(&overrides);

  std::unique_ptr<AdmissionController> admission;
  double pool_byte_time = 0;
  SimTime last_accrual = span_start;
  SimTime last_outcome = span_start;
  int64_t shed_count = 0;

  // Time-weighted resident bytes: the idle pool plus the predicted footprint
  // of admitted in-flight work.
  const auto accrue = [&](SimTime now) {
    pool_byte_time += static_cast<double>((pool_bytes_ + admission->committed_bytes()).value()) *
                      (now - last_accrual).seconds();
    last_accrual = now;
  };

  const auto update_ladder = [&] {
    ladder.Update(admission->memory_utilization(), platform_->storage()->DemandPressure());
    overrides.readahead_scale = ladder.readahead_scale();
    overrides.loader_depth_cap = ladder.loader_depth_cap();
  };

  AdmissionController::Hooks hooks;
  hooks.pinned_bytes = [this] { return pool_bytes_; };
  hooks.make_room = [&](ByteCount bytes) { EvictIdleBytes(bytes, &stats); };
  hooks.shed = [&](const AdmissionRequest& request, InvocationOutcome outcome, Duration wait) {
    (void)wait;  // the shed report derives its own wait from request.arrival
    accrue(sim->now());
    Entry& entry = *entries_[request.function_index];
    Status reason = outcome == InvocationOutcome::kShedQueueFull
                        ? ResourceExhaustedError("admission queue full")
                        : DeadlineExceededError("queueing deadline exceeded");
    platform_->ReportShed(*entry.snapshot,
                          entry.warm ? RestoreMode::kWarm : config_.miss_mode, request.arrival,
                          outcome, std::move(reason));
    Counter* metric = shed_metrics[outcome == InvocationOutcome::kShedQueueFull ? 0 : 1];
    if (metric != nullptr) {
      metric->Add(1);
    }
    ++shed_count;
    last_outcome = sim->now();
    update_ladder();
  };
  hooks.run = [&](const AdmissionRequest& request, Duration wait) {
    const SimTime now = sim->now();
    accrue(now);
    Entry& entry = *entries_[request.function_index];
    // L3 tightens the keep-alive horizon; idle VMs go back to snapshots sooner.
    ReclaimAndEvict(entry.warm ? ByteCount::Zero() : entry.ws_bytes,
                    ScaleDuration(config_.keep_warm, ladder.keep_warm_scale()), &stats);
    const bool warm = entry.warm;
    if (warm) {
      // The warm VM leaves the idle pool while running; its bytes are charged
      // to the admission controller's in-flight accounting instead.
      MarkCold(&entry);
    }
    ++entry.running;
    stats.queue_wait_ms.Record(wait.millis());
    // No DropCaches on misses here: the page cache is shared with concurrent
    // in-flight restores, and dropping it would clobber them mid-flight.

    WorkloadInput input = MakeInputA(entry.generator->spec());
    if (!entry.generator->spec().fixed_input) {
      input.content_seed = seeds[request.id];
    }
    ServeParams params;
    params.warm = warm;
    params.miss_mode = config_.miss_mode;
    if (!warm && ladder.demote_restore_mode() && DemotableToReap(config_.miss_mode)) {
      // L2: serve the miss WS-only instead of prefetching the full snapshot.
      params.miss_mode = RestoreMode::kReap;
      ++stats.pressure_demotions;
    }
    params.quarantine_failure_threshold = config_.quarantine_failure_threshold;
    params.quarantine_backoff = config_.quarantine_backoff;
    params.function_index = request.function_index;
    const PlannedServe planned = BeginServe(platform_, params, &entry.health, counters);
    platform_->InvokeAsync(
        *entry.snapshot, planned.mode, entry.generator->Generate(input),
        [&, request, params, planned, warm](InvocationReport report) {
          const SimTime done_at = sim->now();
          accrue(done_at);
          Entry& served = *entries_[request.function_index];
          --served.running;
          FinishServe(platform_, planned, report.outcome, params, &served.health, counters);
          const Duration latency = report.total_time();
          stats.invocations++;
          stats.per_function_invocations[request.function_index]++;
          if (warm) {
            stats.warm_hits++;
            stats.per_function_hits[request.function_index]++;
          } else {
            stats.misses++;
            stats.miss_latency_ms.Record(latency.millis());
          }
          stats.latency_ms.Record(latency.millis());
          stats.accepted_latency.Record(latency);
          if (warm_hits_metric != nullptr) {
            (warm ? warm_hits_metric : misses_metric)->Add(1);
          }
          // A failed invocation leaves no VM behind to keep warm.
          if (report.outcome != InvocationOutcome::kFailed) {
            MarkWarm(&served, done_at);
          } else {
            served.last_used = done_at;
          }
          if (pool_gauge != nullptr) {
            pool_gauge->Set(static_cast<double>(pool_bytes_.value()));
          }
          last_outcome = done_at;
          admission->OnComplete(request);
          update_ladder();
        });
  };
  admission = std::make_unique<AdmissionController>(sim, config_.admission, std::move(hooks));

  for (size_t i = 0; i < schedule.size(); ++i) {
    sim->Schedule(schedule[i].at, [&, i] {
      accrue(sim->now());
      if (chaos != nullptr) {
        // Chaos memory-squeeze windows shrink the effective admission budget.
        admission->set_budget_scale(chaos->MemoryBudgetFraction(sim->now()));
      }
      update_ladder();
      AdmissionRequest request;
      request.id = i;
      request.function_index = schedule[i].function_index;
      request.predicted_bytes = entries_[schedule[i].function_index]->ws_bytes;
      request.arrival = sim->now();
      admission->Offer(request);
    });
  }
  sim->Run();

  // Every offered arrival resolved to exactly one typed outcome.
  FAASNAP_CHECK(stats.invocations + shed_count == static_cast<int64_t>(schedule.size()));
  accrue(sim->now());

  const AdmissionController::Stats& astats = admission->stats();
  FAASNAP_CHECK(astats.admitted == stats.invocations);
  stats.arrivals = astats.offered;
  stats.shed_queue_full = astats.shed_queue_full;
  stats.shed_deadline = astats.shed_deadline;
  stats.queued = astats.queued;
  stats.fairness_deferrals = astats.fairness_deferrals;
  stats.max_in_flight = astats.max_in_flight;
  stats.max_queue_depth = astats.max_queue_depth;
  stats.pressure_transitions = ladder.transitions();
  stats.max_pressure_level = ladder.max_level();
  stats.final_pressure_level =
      ladder.Update(admission->memory_utilization(), platform_->storage()->DemandPressure());
  if (!schedule.empty() && last_outcome > schedule.back().at) {
    stats.drain_time = last_outcome - schedule.back().at;
  }
  stats.span = sim->now() - span_start;
  if (stats.span > Duration::Zero()) {
    stats.avg_pool_bytes = pool_byte_time / stats.span.seconds();
  }
  if (metrics != nullptr) {
    metrics->GetCounter("scheduler.evictions")->Add(stats.evictions);
    metrics->GetCounter("scheduler.expirations")->Add(stats.expirations);
  }
  platform_->set_pressure_overrides(nullptr);
  return stats;
}

}  // namespace faasnap

#include "src/runtime/host_scheduler.h"

#include <algorithm>
#include <utility>

#include "src/obs/observability.h"

namespace faasnap {

namespace {

// Miss modes the pressure ladder may demote to WS-only REAP at L2+: anything
// that prefetches or loads beyond the recorded working set. Warm/cold-boot
// serves and REAP itself have nothing to shed.
bool DemotableToReap(RestoreMode mode) {
  return mode == RestoreMode::kFaasnap || mode == RestoreMode::kFaasnapPerRegion ||
         mode == RestoreMode::kFaasnapConcurrentOnly || mode == RestoreMode::kCached;
}

Duration ScaleDuration(Duration d, double scale) {
  if (scale >= 1.0) {
    return d;
  }
  return Duration::Nanos(static_cast<int64_t>(static_cast<double>(d.nanos()) * scale));
}

}  // namespace

HostScheduler::HostScheduler(Platform* platform, HostSchedulerConfig config)
    : platform_(platform), config_(config) {
  FAASNAP_CHECK(platform_ != nullptr);
  FAASNAP_CHECK(!config_.warm_pool_budget_bytes.is_zero());
}

HostScheduler::~HostScheduler() = default;

size_t HostScheduler::AddFunction(const FunctionSpec& spec) {
  auto entry = std::make_unique<Entry>();
  entry->owned_generator =
      std::make_unique<TraceGenerator>(spec, platform_->config().layout);
  entry->owned_snapshot = std::make_unique<FunctionSnapshot>(
      platform_->Record(*entry->owned_generator, MakeInputA(spec)));
  entry->generator = entry->owned_generator.get();
  entry->snapshot = entry->owned_snapshot.get();
  entry->ws_bytes =
      PagesToBytes(PageCount::FromPages(entry->snapshot->record_touched.page_count()));
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

size_t HostScheduler::AddRecordedFunction(const FunctionSnapshot* snapshot,
                                          const TraceGenerator* generator) {
  FAASNAP_CHECK(snapshot != nullptr && generator != nullptr);
  auto entry = std::make_unique<Entry>();
  entry->generator = generator;
  entry->snapshot = snapshot;
  entry->ws_bytes = PagesToBytes(PageCount::FromPages(snapshot->record_touched.page_count()));
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

void HostScheduler::MarkWarm(Entry* entry, SimTime now) {
  if (entry->warm) {
    lru_.erase(entry->lru_it);
  } else {
    entry->warm = true;
    pool_bytes_ += entry->ws_bytes;
  }
  entry->last_used = now;
  lru_.push_back(entry);
  entry->lru_it = std::prev(lru_.end());
}

void HostScheduler::MarkCold(Entry* entry) {
  if (!entry->warm) {
    return;
  }
  entry->warm = false;
  FAASNAP_CHECK(pool_bytes_ >= entry->ws_bytes);
  pool_bytes_ -= entry->ws_bytes;
  lru_.erase(entry->lru_it);
}

void HostScheduler::ReclaimAndEvict(ByteCount needed, Duration keep_warm,
                                    HostSchedulerStats* stats) {
  const SimTime now = platform_->sim()->now();
  // Keep-alive horizon first. The LRU list is ordered by last_used, so the
  // expired entries are exactly its prefix.
  while (!lru_.empty() && now - lru_.front()->last_used > keep_warm) {
    MarkCold(lru_.front());
    stats->expirations++;
  }
  // LRU eviction under pool pressure ("evict to snapshot"). If nothing is left
  // to evict, the new VM may exceed the budget alone.
  while (pool_bytes_ + needed > config_.warm_pool_budget_bytes && !lru_.empty()) {
    MarkCold(lru_.front());
    stats->evictions++;
  }
}

void HostScheduler::EvictIdleBytes(ByteCount bytes, HostSchedulerStats* stats) {
  ByteCount freed;
  while (freed < bytes && !lru_.empty()) {
    freed += lru_.front()->ws_bytes;
    MarkCold(lru_.front());
    stats->evictions++;
  }
}

HostSchedulerStats HostScheduler::Run(const std::vector<Arrival>& arrivals) {
  return config_.open_loop ? RunOpenLoop(arrivals) : RunClosedLoop(arrivals);
}

HostSchedulerStats HostScheduler::RunClosedLoop(const std::vector<Arrival>& arrivals) {
  HostSchedulerStats stats;
  stats.per_function_hits.assign(entries_.size(), 0);
  stats.per_function_invocations.assign(entries_.size(), 0);
  Simulation* sim = platform_->sim();
  const SimTime span_start = sim->now();
  SimTime last_completion = sim->now();
  double pool_byte_time = 0;
  uint64_t arrival_seed = 0x5c4ed;
  const ServeCounters counters{&stats.restore_failures, &stats.quarantines,
                               &stats.quarantined_serves};

  MetricsRegistry* metrics = platform_->metrics();
  Counter* warm_hits_metric = nullptr;
  Counter* misses_metric = nullptr;
  Gauge* pool_gauge = nullptr;
  if (metrics != nullptr) {
    warm_hits_metric = metrics->GetCounter("scheduler.warm_hits");
    misses_metric = metrics->GetCounter("scheduler.misses");
    pool_gauge = metrics->GetGauge("scheduler.pool_bytes");
  }

  for (const Arrival& arrival : arrivals) {
    FAASNAP_CHECK(arrival.function_index < entries_.size());
    const SimTime at = last_completion + arrival.gap;
    const SimTime before = sim->now();
    sim->RunUntil(at);
    pool_byte_time += static_cast<double>(pool_bytes_.value()) * (sim->now() - before).seconds();

    Entry& entry = *entries_[arrival.function_index];
    ReclaimAndEvict(entry.warm ? ByteCount::Zero() : entry.ws_bytes, config_.keep_warm, &stats);
    const bool warm = entry.warm;
    if (!warm) {
      // Cold pool slot: this function's pages are not resident; other tenants
      // also recycled the page cache while we idled.
      platform_->DropCaches();
    }

    WorkloadInput input = MakeInputA(entry.generator->spec());
    if (!entry.generator->spec().fixed_input) {
      input.content_seed = ++arrival_seed;
    }
    ServeParams params;
    params.warm = warm;
    params.miss_mode = config_.miss_mode;
    params.quarantine_failure_threshold = config_.quarantine_failure_threshold;
    params.quarantine_backoff = config_.quarantine_backoff;
    params.function_index = arrival.function_index;
    const PlannedServe planned = BeginServe(platform_, params, &entry.health, counters);
    bool done = false;
    Duration latency;
    InvocationOutcome outcome = InvocationOutcome::kOk;
    platform_->InvokeAsync(*entry.snapshot, planned.mode,
                           entry.generator->Generate(input), [&](InvocationReport report) {
                             latency = report.total_time();
                             outcome = report.outcome;
                             done = true;
                           });
    sim->Run();
    FAASNAP_CHECK(done);
    // The serve span ends (and quarantine bookkeeping stamps) at the
    // post-drain clock, as the serial loop always has.
    FinishServe(platform_, planned, outcome, params, &entry.health, counters);

    stats.invocations++;
    stats.per_function_invocations[arrival.function_index]++;
    entry.served_once = true;
    if (warm) {
      stats.warm_hits++;
      stats.per_function_hits[arrival.function_index]++;
    } else {
      stats.misses++;
      stats.miss_latency_ms.Record(latency.millis());
    }
    stats.latency_ms.Record(latency.millis());
    pool_byte_time +=
        static_cast<double>((pool_bytes_ + (warm ? ByteCount::Zero() : entry.ws_bytes)).value()) *
        latency.seconds();

    if (warm_hits_metric != nullptr) {
      (warm ? warm_hits_metric : misses_metric)->Add(1);
    }

    // A failed invocation leaves no VM behind to keep warm.
    if (outcome != InvocationOutcome::kFailed) {
      MarkWarm(&entry, sim->now());
    } else {
      MarkCold(&entry);
      entry.last_used = sim->now();
    }
    last_completion = sim->now();
    if (pool_gauge != nullptr) {
      pool_gauge->Set(static_cast<double>(pool_bytes_.value()));
    }
  }

  stats.span = sim->now() - span_start;
  if (stats.span > Duration::Zero()) {
    stats.avg_pool_bytes = pool_byte_time / stats.span.seconds();
  }
  if (metrics != nullptr) {
    metrics->GetCounter("scheduler.evictions")->Add(stats.evictions);
    metrics->GetCounter("scheduler.expirations")->Add(stats.expirations);
  }
  return stats;
}

// Live state of one open-loop run. Heap-held (stable address) because the
// admission hooks, pressure overrides, and completion callbacks all point
// into it while the run is in flight — possibly across many cluster epochs.
struct HostScheduler::OpenLoopState {
  explicit OpenLoopState(const PressureLadderConfig& ladder_config) : ladder(ladder_config) {}

  HostSchedulerStats stats;
  PressureLadder ladder;
  Platform::PressureOverrides overrides;
  std::unique_ptr<AdmissionController> admission;

  // Time-weighted resident bytes: the idle pool plus the predicted footprint
  // of admitted in-flight work.
  double pool_byte_time = 0;
  SimTime span_start;
  SimTime last_accrual;
  SimTime last_outcome;
  int64_t shed_count = 0;
  int64_t offered = 0;

  // Per-arrival content seeds, drawn when the arrival event fires — which is
  // offer order — so the input stream does not depend on dispatch
  // interleaving, and an epoch-wise driver produces the same stream as an
  // up-front schedule. seeds[id] keys AdmissionRequest::id.
  uint64_t arrival_seed = 0x5c4ed;
  std::vector<uint64_t> seeds;

  bool have_offer = false;
  SimTime last_offer_at;

  Counter* warm_hits_metric = nullptr;
  Counter* misses_metric = nullptr;
  Gauge* pool_gauge = nullptr;
  Counter* shed_metrics[2] = {};  // queue_full, deadline
};

void HostScheduler::BeginOpenLoop() {
  FAASNAP_CHECK(open_loop_ == nullptr);
  open_loop_ = std::make_unique<OpenLoopState>(config_.ladder);
  OpenLoopState& ol = *open_loop_;
  ol.stats.per_function_hits.assign(entries_.size(), 0);
  ol.stats.per_function_invocations.assign(entries_.size(), 0);
  Simulation* sim = platform_->sim();
  ol.span_start = sim->now();
  ol.last_accrual = ol.span_start;
  ol.last_outcome = ol.span_start;

  MetricsRegistry* metrics = platform_->metrics();
  if (metrics != nullptr) {
    ol.warm_hits_metric = metrics->GetCounter("scheduler.warm_hits");
    ol.misses_metric = metrics->GetCounter("scheduler.misses");
    ol.pool_gauge = metrics->GetGauge("scheduler.pool_bytes");
    ol.shed_metrics[0] = metrics->GetCounter("scheduler.shed", {{"reason", "queue_full"}});
    ol.shed_metrics[1] = metrics->GetCounter("scheduler.shed", {{"reason", "deadline"}});
  }

  platform_->set_pressure_overrides(&ol.overrides);

  AdmissionController::Hooks hooks;
  hooks.pinned_bytes = [this] { return pool_bytes_; };
  hooks.make_room = [this](ByteCount bytes) { EvictIdleBytes(bytes, &open_loop_->stats); };
  hooks.shed = [this](const AdmissionRequest& request, InvocationOutcome outcome, Duration wait) {
    OpenLoopShed(request, outcome, wait);
  };
  hooks.run = [this](const AdmissionRequest& request, Duration wait) {
    OpenLoopRun(request, wait);
  };
  ol.admission = std::make_unique<AdmissionController>(sim, config_.admission, std::move(hooks));
}

void HostScheduler::OfferAt(size_t function_index, SimTime at) {
  FAASNAP_CHECK(open_loop_ != nullptr);
  FAASNAP_CHECK(function_index < entries_.size());
  OpenLoopState& ol = *open_loop_;
  ++ol.offered;
  if (!ol.have_offer || at > ol.last_offer_at) {
    ol.have_offer = true;
    ol.last_offer_at = at;
  }
  platform_->sim()->Schedule(at, [this, function_index] { OpenLoopArrival(function_index); });
}

void HostScheduler::OpenLoopAccrue(SimTime now) {
  OpenLoopState& ol = *open_loop_;
  ol.pool_byte_time +=
      static_cast<double>((pool_bytes_ + ol.admission->committed_bytes()).value()) *
      (now - ol.last_accrual).seconds();
  ol.last_accrual = now;
}

void HostScheduler::OpenLoopUpdateLadder() {
  OpenLoopState& ol = *open_loop_;
  ol.ladder.Update(ol.admission->memory_utilization(), platform_->storage()->DemandPressure());
  ol.overrides.readahead_scale = ol.ladder.readahead_scale();
  ol.overrides.loader_depth_cap = ol.ladder.loader_depth_cap();
}

void HostScheduler::OpenLoopArrival(size_t function_index) {
  OpenLoopState& ol = *open_loop_;
  Simulation* sim = platform_->sim();
  OpenLoopAccrue(sim->now());
  FaultInjector* chaos = platform_->chaos();
  if (chaos != nullptr) {
    // Chaos memory-squeeze windows shrink the effective admission budget.
    ol.admission->set_budget_scale(chaos->MemoryBudgetFraction(sim->now()));
  }
  OpenLoopUpdateLadder();
  AdmissionRequest request;
  request.id = ol.seeds.size();
  request.function_index = function_index;
  request.predicted_bytes = entries_[function_index]->ws_bytes;
  request.arrival = sim->now();
  ol.seeds.push_back(entries_[function_index]->generator->spec().fixed_input
                         ? 0
                         : ++ol.arrival_seed);
  ol.admission->Offer(request);
}

void HostScheduler::OpenLoopShed(const AdmissionRequest& request, InvocationOutcome outcome,
                                 Duration wait) {
  (void)wait;  // the shed report derives its own wait from request.arrival
  OpenLoopState& ol = *open_loop_;
  Simulation* sim = platform_->sim();
  OpenLoopAccrue(sim->now());
  Entry& entry = *entries_[request.function_index];
  Status reason = outcome == InvocationOutcome::kShedQueueFull
                      ? ResourceExhaustedError("admission queue full")
                      : DeadlineExceededError("queueing deadline exceeded");
  platform_->ReportShed(*entry.snapshot, entry.warm ? RestoreMode::kWarm : config_.miss_mode,
                        request.arrival, outcome, std::move(reason));
  Counter* metric = ol.shed_metrics[outcome == InvocationOutcome::kShedQueueFull ? 0 : 1];
  if (metric != nullptr) {
    metric->Add(1);
  }
  ++ol.shed_count;
  ol.last_outcome = sim->now();
  OpenLoopUpdateLadder();
}

void HostScheduler::OpenLoopRun(const AdmissionRequest& request, Duration wait) {
  OpenLoopState& ol = *open_loop_;
  const SimTime now = platform_->sim()->now();
  OpenLoopAccrue(now);
  const ServeCounters counters{&ol.stats.restore_failures, &ol.stats.quarantines,
                               &ol.stats.quarantined_serves};
  Entry& entry = *entries_[request.function_index];
  // L3 tightens the keep-alive horizon; idle VMs go back to snapshots sooner.
  ReclaimAndEvict(entry.warm ? ByteCount::Zero() : entry.ws_bytes,
                  ScaleDuration(config_.keep_warm, ol.ladder.keep_warm_scale()), &ol.stats);
  const bool warm = entry.warm;
  if (warm) {
    // The warm VM leaves the idle pool while running; its bytes are charged
    // to the admission controller's in-flight accounting instead.
    MarkCold(&entry);
  }
  ++entry.running;
  ol.stats.queue_wait_ms.Record(wait.millis());
  // No DropCaches on misses here: the page cache is shared with concurrent
  // in-flight restores, and dropping it would clobber them mid-flight.

  WorkloadInput input = MakeInputA(entry.generator->spec());
  if (!entry.generator->spec().fixed_input) {
    input.content_seed = ol.seeds[request.id];
  }
  ServeParams params;
  params.warm = warm;
  params.miss_mode = config_.miss_mode;
  if (!warm && ol.ladder.demote_restore_mode() && DemotableToReap(config_.miss_mode)) {
    // L2: serve the miss WS-only instead of prefetching the full snapshot.
    params.miss_mode = RestoreMode::kReap;
    ++ol.stats.pressure_demotions;
  }
  params.quarantine_failure_threshold = config_.quarantine_failure_threshold;
  params.quarantine_backoff = config_.quarantine_backoff;
  params.function_index = request.function_index;
  const PlannedServe planned = BeginServe(platform_, params, &entry.health, counters);
  platform_->InvokeAsync(*entry.snapshot, planned.mode, entry.generator->Generate(input),
                         [this, request, params, planned, warm](InvocationReport report) {
                           OpenLoopComplete(request, params, planned, warm, report);
                         });
}

void HostScheduler::OpenLoopComplete(const AdmissionRequest& request, const ServeParams& params,
                                     const PlannedServe& planned, bool warm,
                                     const InvocationReport& report) {
  OpenLoopState& ol = *open_loop_;
  const SimTime done_at = platform_->sim()->now();
  OpenLoopAccrue(done_at);
  const ServeCounters counters{&ol.stats.restore_failures, &ol.stats.quarantines,
                               &ol.stats.quarantined_serves};
  Entry& served = *entries_[request.function_index];
  --served.running;
  FinishServe(platform_, planned, report.outcome, params, &served.health, counters);
  const Duration latency = report.total_time();
  ol.stats.invocations++;
  ol.stats.per_function_invocations[request.function_index]++;
  if (warm) {
    ol.stats.warm_hits++;
    ol.stats.per_function_hits[request.function_index]++;
  } else {
    ol.stats.misses++;
    ol.stats.miss_latency_ms.Record(latency.millis());
  }
  ol.stats.latency_ms.Record(latency.millis());
  ol.stats.accepted_latency.Record(latency);
  if (ol.warm_hits_metric != nullptr) {
    (warm ? ol.warm_hits_metric : ol.misses_metric)->Add(1);
  }
  served.served_once = true;
  // A failed invocation leaves no VM behind to keep warm.
  if (report.outcome != InvocationOutcome::kFailed) {
    MarkWarm(&served, done_at);
  } else {
    served.last_used = done_at;
  }
  if (ol.pool_gauge != nullptr) {
    ol.pool_gauge->Set(static_cast<double>(pool_bytes_.value()));
  }
  ol.last_outcome = done_at;
  ol.admission->OnComplete(request);
  OpenLoopUpdateLadder();
}

int64_t HostScheduler::OutstandingLoad() const {
  if (open_loop_ == nullptr) {
    return 0;
  }
  return open_loop_->admission->in_flight() +
         static_cast<int64_t>(open_loop_->admission->queue_depth());
}

bool HostScheduler::OpenLoopIdle() const { return OutstandingLoad() == 0; }

HostSchedulerStats HostScheduler::FinishOpenLoop() {
  FAASNAP_CHECK(open_loop_ != nullptr);
  OpenLoopState& ol = *open_loop_;
  Simulation* sim = platform_->sim();

  // Every offered arrival resolved to exactly one typed outcome.
  FAASNAP_CHECK(ol.stats.invocations + ol.shed_count == ol.offered);
  OpenLoopAccrue(sim->now());

  const AdmissionController::Stats& astats = ol.admission->stats();
  FAASNAP_CHECK(astats.admitted == ol.stats.invocations);
  ol.stats.arrivals = astats.offered;
  ol.stats.shed_queue_full = astats.shed_queue_full;
  ol.stats.shed_deadline = astats.shed_deadline;
  ol.stats.queued = astats.queued;
  ol.stats.fairness_deferrals = astats.fairness_deferrals;
  ol.stats.max_in_flight = astats.max_in_flight;
  ol.stats.max_queue_depth = astats.max_queue_depth;
  ol.stats.pressure_transitions = ol.ladder.transitions();
  ol.stats.max_pressure_level = ol.ladder.max_level();
  ol.stats.final_pressure_level =
      ol.ladder.Update(ol.admission->memory_utilization(), platform_->storage()->DemandPressure());
  if (ol.have_offer && ol.last_outcome > ol.last_offer_at) {
    ol.stats.drain_time = ol.last_outcome - ol.last_offer_at;
  }
  ol.stats.span = sim->now() - ol.span_start;
  if (ol.stats.span > Duration::Zero()) {
    ol.stats.avg_pool_bytes = ol.pool_byte_time / ol.stats.span.seconds();
  }
  MetricsRegistry* metrics = platform_->metrics();
  if (metrics != nullptr) {
    metrics->GetCounter("scheduler.evictions")->Add(ol.stats.evictions);
    metrics->GetCounter("scheduler.expirations")->Add(ol.stats.expirations);
  }
  platform_->set_pressure_overrides(nullptr);
  HostSchedulerStats stats = std::move(ol.stats);
  open_loop_.reset();
  return stats;
}

HostSchedulerStats HostScheduler::RunOpenLoop(const std::vector<Arrival>& arrivals) {
  Simulation* sim = platform_->sim();
  // Absolute arrival times; chaos burst windows compress the offered gaps.
  const std::vector<TimedArrival> schedule =
      BuildOpenLoopSchedule(arrivals, sim->now(), platform_->chaos());
  BeginOpenLoop();
  for (const TimedArrival& timed : schedule) {
    OfferAt(timed.function_index, timed.at);
  }
  sim->Run();
  return FinishOpenLoop();
}

}  // namespace faasnap

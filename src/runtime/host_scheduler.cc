#include "src/runtime/host_scheduler.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/obs/observability.h"

namespace faasnap {

std::vector<Arrival> ZipfArrivals(size_t functions, int count, double zipf_s,
                                  Duration mean_gap, uint64_t seed) {
  FAASNAP_CHECK(functions > 0);
  FAASNAP_CHECK(mean_gap > Duration::Zero());
  // Zipf CDF over ranks 1..F.
  std::vector<double> cdf(functions);
  double total = 0;
  for (size_t i = 0; i < functions; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
    cdf[i] = total;
  }
  for (double& v : cdf) {
    v /= total;
  }
  Rng rng(seed);
  std::vector<Arrival> arrivals;
  arrivals.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double u = rng.NextDouble();
    const size_t function_index = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    double e = rng.NextDouble();
    if (e <= 0.0) {
      e = 1e-12;
    }
    const auto gap = Duration::Nanos(
        static_cast<int64_t>(-std::log(e) * static_cast<double>(mean_gap.nanos())) + 1);
    arrivals.push_back(Arrival{std::min(function_index, functions - 1), gap});
  }
  return arrivals;
}

HostScheduler::HostScheduler(Platform* platform, HostSchedulerConfig config)
    : platform_(platform), config_(config) {
  FAASNAP_CHECK(platform_ != nullptr);
  FAASNAP_CHECK(config_.warm_pool_budget_bytes > 0);
}

size_t HostScheduler::AddFunction(const FunctionSpec& spec) {
  auto entry = std::make_unique<Entry>();
  entry->generator =
      std::make_unique<TraceGenerator>(spec, platform_->config().layout);
  entry->snapshot = std::make_unique<FunctionSnapshot>(
      platform_->Record(*entry->generator, MakeInputA(spec)));
  entry->ws_bytes = PagesToBytes(entry->snapshot->record_touched.page_count());
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

uint64_t HostScheduler::pool_bytes() const {
  uint64_t total = 0;
  for (const auto& entry : entries_) {
    if (entry->warm) {
      total += entry->ws_bytes;
    }
  }
  return total;
}

void HostScheduler::ReclaimAndEvict(uint64_t needed, HostSchedulerStats* stats) {
  const SimTime now = platform_->sim()->now();
  // Keep-alive horizon first.
  for (auto& entry : entries_) {
    if (entry->warm && now - entry->last_used > config_.keep_warm) {
      entry->warm = false;
      stats->expirations++;
    }
  }
  // LRU eviction under pool pressure ("evict to snapshot").
  while (pool_bytes() + needed > config_.warm_pool_budget_bytes) {
    Entry* lru = nullptr;
    for (auto& entry : entries_) {
      if (entry->warm && (lru == nullptr || entry->last_used < lru->last_used)) {
        lru = entry.get();
      }
    }
    if (lru == nullptr) {
      break;  // nothing left to evict; the new VM may exceed the budget alone
    }
    lru->warm = false;
    stats->evictions++;
  }
}

HostSchedulerStats HostScheduler::Run(const std::vector<Arrival>& arrivals) {
  HostSchedulerStats stats;
  stats.per_function_hits.assign(entries_.size(), 0);
  stats.per_function_invocations.assign(entries_.size(), 0);
  Simulation* sim = platform_->sim();
  const SimTime span_start = sim->now();
  SimTime last_completion = sim->now();
  double pool_byte_time = 0;
  uint64_t arrival_seed = 0x5c4ed;

  SpanTracer* spans = platform_->spans();
  MetricsRegistry* metrics = platform_->metrics();
  Counter* warm_hits_metric = nullptr;
  Counter* misses_metric = nullptr;
  Gauge* pool_gauge = nullptr;
  if (metrics != nullptr) {
    warm_hits_metric = metrics->GetCounter("scheduler.warm_hits");
    misses_metric = metrics->GetCounter("scheduler.misses");
    pool_gauge = metrics->GetGauge("scheduler.pool_bytes");
  }

  for (const Arrival& arrival : arrivals) {
    FAASNAP_CHECK(arrival.function_index < entries_.size());
    const SimTime at = last_completion + arrival.gap;
    const SimTime before = sim->now();
    sim->RunUntil(at);
    pool_byte_time += static_cast<double>(pool_bytes()) * (sim->now() - before).seconds();

    Entry& entry = *entries_[arrival.function_index];
    ReclaimAndEvict(entry.warm ? 0 : entry.ws_bytes, &stats);
    const bool warm = entry.warm;
    if (!warm) {
      // Cold pool slot: this function's pages are not resident; other tenants
      // also recycled the page cache while we idled.
      platform_->DropCaches();
    }

    WorkloadInput input = MakeInputA(entry.generator->spec());
    if (!entry.generator->spec().fixed_input) {
      input.content_seed = ++arrival_seed;
    }
    // Quarantine: a snapshot that keeps failing restore is benched for a
    // backoff window; misses in the window cold-boot instead of retrying it.
    RestoreMode mode = warm ? RestoreMode::kWarm : config_.miss_mode;
    if (!warm && sim->now() < entry.quarantined_until) {
      mode = RestoreMode::kColdBoot;
      stats.quarantined_serves++;
    }
    // One serve span per arrival on the scheduler lane: arrival -> completion,
    // arg0 = function index, arg1 = warm hit.
    const SpanId serve_span =
        spans != nullptr
            ? spans->Begin(sim->now(), ObsLane::kScheduler, obsname::kSchedulerServe,
                           arrival.function_index, warm ? 1 : 0)
            : kNoSpan;
    bool done = false;
    Duration latency;
    InvocationOutcome outcome = InvocationOutcome::kOk;
    platform_->InvokeAsync(*entry.snapshot, mode,
                           entry.generator->Generate(input), [&](InvocationReport report) {
                             latency = report.total_time();
                             outcome = report.outcome;
                             done = true;
                           });
    sim->Run();
    FAASNAP_CHECK(done);
    if (!warm && mode != RestoreMode::kColdBoot) {
      if (outcome == InvocationOutcome::kFailed) {
        stats.restore_failures++;
        if (++entry.consecutive_failures >= config_.quarantine_failure_threshold) {
          entry.quarantined_until = sim->now() + config_.quarantine_backoff;
          entry.consecutive_failures = 0;
          stats.quarantines++;
        }
      } else {
        entry.consecutive_failures = 0;
      }
    }
    if (spans != nullptr) {
      spans->End(serve_span, sim->now());
    }

    stats.invocations++;
    stats.per_function_invocations[arrival.function_index]++;
    if (warm) {
      stats.warm_hits++;
      stats.per_function_hits[arrival.function_index]++;
    } else {
      stats.misses++;
      stats.miss_latency_ms.Record(latency.millis());
    }
    stats.latency_ms.Record(latency.millis());
    pool_byte_time +=
        static_cast<double>(pool_bytes() + (warm ? 0 : entry.ws_bytes)) * latency.seconds();

    if (warm_hits_metric != nullptr) {
      (warm ? warm_hits_metric : misses_metric)->Add(1);
    }

    // A failed invocation leaves no VM behind to keep warm.
    entry.warm = outcome != InvocationOutcome::kFailed;
    entry.last_used = sim->now();
    last_completion = sim->now();
    if (pool_gauge != nullptr) {
      pool_gauge->Set(static_cast<double>(pool_bytes()));
    }
  }

  stats.span = sim->now() - span_start;
  if (stats.span > Duration::Zero()) {
    stats.avg_pool_bytes = pool_byte_time / stats.span.seconds();
  }
  if (metrics != nullptr) {
    metrics->GetCounter("scheduler.evictions")->Add(stats.evictions);
    metrics->GetCounter("scheduler.expirations")->Add(stats.expirations);
  }
  return stats;
}

}  // namespace faasnap

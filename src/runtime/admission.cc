#include "src/runtime/admission.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace faasnap {

AdmissionController::AdmissionController(Simulation* sim, AdmissionConfig config, Hooks hooks)
    : sim_(sim), config_(config), hooks_(std::move(hooks)) {
  FAASNAP_CHECK(sim_ != nullptr);
  FAASNAP_CHECK(config_.max_concurrency > 0);
  FAASNAP_CHECK(config_.queue_capacity >= 0);
  FAASNAP_CHECK(hooks_.run != nullptr && hooks_.shed != nullptr);
}

ByteCount AdmissionController::effective_budget() const {
  const double scaled =
      static_cast<double>(config_.memory_budget_bytes.value()) * budget_scale_;
  return ByteCount::FromBytes(scaled < 0.0 ? 0 : static_cast<uint64_t>(scaled));
}

double AdmissionController::memory_utilization() const {
  const ByteCount budget = effective_budget();
  if (config_.memory_budget_bytes.is_zero() || budget.is_zero()) {
    return 0.0;
  }
  const ByteCount pinned =
      hooks_.pinned_bytes != nullptr ? hooks_.pinned_bytes() : ByteCount::Zero();
  return static_cast<double>((committed_bytes_ + pinned).value()) /
         static_cast<double>(budget.value());
}

bool AdmissionController::AtFairnessCap(size_t function_index) const {
  if (config_.fairness_share <= 0.0) {
    return false;
  }
  const auto cap = static_cast<int64_t>(
      std::ceil(config_.fairness_share * static_cast<double>(config_.max_concurrency)));
  const int64_t held = function_index < per_function_in_flight_.size()
                           ? per_function_in_flight_[function_index]
                           : 0;
  return held >= std::max<int64_t>(cap, 1);
}

bool AdmissionController::MemoryFits(ByteCount predicted_bytes) {
  if (config_.memory_budget_bytes.is_zero()) {
    return true;
  }
  const ByteCount budget = effective_budget();
  const auto pinned = [&] {
    return hooks_.pinned_bytes != nullptr ? hooks_.pinned_bytes() : ByteCount::Zero();
  };
  if (committed_bytes_ + pinned() + predicted_bytes <= budget) {
    return true;
  }
  // The idle warm pool is reclaimable capacity: ask the owner to evict before
  // treating the request as unservable right now.
  if (hooks_.make_room != nullptr) {
    const ByteCount over = committed_bytes_ + pinned() + predicted_bytes - budget;
    hooks_.make_room(over);
  }
  return committed_bytes_ + pinned() + predicted_bytes <= budget;
}

void AdmissionController::Admit(const AdmissionRequest& request) {
  ++in_flight_;
  if (per_function_in_flight_.size() <= request.function_index) {
    per_function_in_flight_.resize(request.function_index + 1, 0);
  }
  ++per_function_in_flight_[request.function_index];
  committed_bytes_ += request.predicted_bytes;
  ++stats_.admitted;
  stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight_);
  const Duration wait = sim_->now() - request.arrival;
  if (wait > Duration::Zero()) {
    ++stats_.queued;
  }
  hooks_.run(request, wait);
}

void AdmissionController::TryDispatch() {
  for (auto it = queue_.begin(); it != queue_.end() && in_flight_ < config_.max_concurrency;) {
    const AdmissionRequest& request = it->request;
    if (AtFairnessCap(request.function_index)) {
      ++stats_.fairness_deferrals;
      ++it;
      continue;
    }
    if (!MemoryFits(request.predicted_bytes)) {
      ++it;
      continue;
    }
    const AdmissionRequest admitted = request;
    it = queue_.erase(it);
    Admit(admitted);
    // Admit may complete work synchronously in tests; restart the scan so the
    // iterator never straddles a reentrant queue mutation.
    it = queue_.begin();
  }
}

void AdmissionController::Offer(AdmissionRequest request) {
  ++stats_.offered;
  const uint64_t id = request.id;
  queue_.push_back(QueuedRequest{request});
  TryDispatch();
  // TryDispatch preserves FIFO order, so if this arrival is still waiting it
  // sits at the back. A waiter past the bounded capacity is the overflow.
  const bool still_queued = !queue_.empty() && queue_.back().request.id == id;
  if (still_queued && static_cast<int>(queue_.size()) > config_.queue_capacity) {
    const AdmissionRequest overflow = queue_.back().request;
    queue_.pop_back();
    ++stats_.shed_queue_full;
    hooks_.shed(overflow, InvocationOutcome::kShedQueueFull, Duration::Zero());
    return;
  }
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  if (still_queued && config_.queue_deadline > Duration::Zero()) {
    sim_->Schedule(sim_->now() + config_.queue_deadline, [this, id] { OnDeadline(id); });
  }
}

void AdmissionController::OnDeadline(uint64_t id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->request.id == id) {
      const AdmissionRequest request = it->request;
      queue_.erase(it);
      ++stats_.shed_deadline;
      hooks_.shed(request, InvocationOutcome::kShedDeadline, sim_->now() - request.arrival);
      return;
    }
  }
  // Already dispatched (or shed at offer time with a reused id): the deadline
  // event is stale and ignores itself.
}

void AdmissionController::OnComplete(const AdmissionRequest& request) {
  FAASNAP_CHECK(in_flight_ > 0);
  --in_flight_;
  FAASNAP_CHECK(request.function_index < per_function_in_flight_.size() &&
                per_function_in_flight_[request.function_index] > 0);
  --per_function_in_flight_[request.function_index];
  FAASNAP_CHECK(committed_bytes_ >= request.predicted_bytes);
  committed_bytes_ -= request.predicted_bytes;
  TryDispatch();
}

PressureLadder::PressureLadder(PressureLadderConfig config) : config_(config) {
  for (int i = 0; i < 3; ++i) {
    FAASNAP_CHECK(config_.exit[i] < config_.enter[i] && "hysteresis band must be non-empty");
  }
}

int PressureLadder::Update(double memory_utilization, int demand_pressure) {
  const double demand =
      config_.demand_pressure_full > 0
          ? static_cast<double>(demand_pressure) / config_.demand_pressure_full
          : 0.0;
  const double pressure = std::max(memory_utilization, demand);
  int target = level_;
  while (target < 3 && pressure >= config_.enter[target]) {
    ++target;
  }
  while (target > 0 && pressure < config_.exit[target - 1]) {
    --target;
  }
  if (target != level_) {
    ++transitions_;
    level_ = target;
    max_level_ = std::max(max_level_, level_);
  }
  return level_;
}

}  // namespace faasnap

// Shared per-invocation serve bookkeeping for the serving engines.
//
// HostScheduler and KeepAliveSimulator used to carry diverging copies of the
// same ritual around each invocation: pick the restore mode (warm hit, miss
// mode, or cold boot while the snapshot is quarantined), open the scheduler
// serve span, and afterwards account restore failures into the quarantine
// state machine and close the span. The two halves live here.
//
// The split into Begin/Finish (rather than one run-to-completion helper)
// matters for bit-identity: the closed loops drain the whole event queue after
// InvokeAsync, and their historical span-end and quarantine timestamps use the
// post-drain clock — which can be later than the invocation completion when
// loader chunks land after it. Callers therefore invoke FinishServe at
// whatever clock position their loop historically used.

#ifndef FAASNAP_SRC_RUNTIME_SERVE_COMMON_H_
#define FAASNAP_SRC_RUNTIME_SERVE_COMMON_H_

#include "src/runtime/platform.h"

namespace faasnap {

// Per-snapshot restore-health state: consecutive failed restores, and until
// when misses should bypass the snapshot (cold boot) instead of retrying it.
struct ServeHealth {
  int consecutive_failures = 0;
  SimTime quarantined_until;
};

// Destinations for the shared counters; all required.
struct ServeCounters {
  int64_t* restore_failures = nullptr;   // invocations that ended kFailed on a miss
  int64_t* quarantines = nullptr;        // snapshots benched after repeated failures
  int64_t* quarantined_serves = nullptr; // misses served by cold boot while benched
};

// Inputs fixed at arrival time.
struct ServeParams {
  bool warm = false;
  RestoreMode miss_mode = RestoreMode::kFaasnap;
  int quarantine_failure_threshold = 3;
  Duration quarantine_backoff = Duration::Seconds(60);
  size_t function_index = 0;
};

// What BeginServe decided; thread it through to FinishServe.
struct PlannedServe {
  RestoreMode mode = RestoreMode::kWarm;
  bool warm = false;
  SpanId span = kNoSpan;
};

// Resolves the restore mode (warm / miss / quarantine cold-boot, counting
// quarantined serves) and opens the scheduler-lane serve span at sim->now()
// with arg0 = function index, arg1 = warm hit.
PlannedServe BeginServe(Platform* platform, const ServeParams& params, ServeHealth* health,
                        const ServeCounters& counters);

// Accounts the outcome into the quarantine state machine (restore failures on
// a non-cold-boot miss; benching after the threshold) and ends the serve span
// at sim->now(). Call once per BeginServe, at the clock position the caller's
// loop treats as the serve end.
void FinishServe(Platform* platform, const PlannedServe& planned, InvocationOutcome outcome,
                 const ServeParams& params, ServeHealth* health, const ServeCounters& counters);

}  // namespace faasnap

#endif  // FAASNAP_SRC_RUNTIME_SERVE_COMMON_H_

#include "src/runtime/arrivals.h"

namespace faasnap {

std::vector<TimedArrival> BuildOpenLoopSchedule(const std::vector<Arrival>& arrivals,
                                                SimTime start, FaultInjector* chaos) {
  std::vector<TimedArrival> schedule;
  schedule.reserve(arrivals.size());
  SimTime at = start;
  for (const Arrival& arrival : arrivals) {
    Duration gap = arrival.gap;
    if (chaos != nullptr) {
      const double multiplier = chaos->ArrivalMultiplier(at);
      if (multiplier > 1.0) {
        const auto squeezed =
            static_cast<int64_t>(static_cast<double>(gap.nanos()) / multiplier);
        gap = Duration::Nanos(squeezed < 1 ? 1 : squeezed);
      }
    }
    at = at + gap;
    schedule.push_back(TimedArrival{arrival.function_index, at});
  }
  return schedule;
}

}  // namespace faasnap

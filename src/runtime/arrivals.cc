#include "src/runtime/arrivals.h"

#include <algorithm>
#include <cmath>

namespace faasnap {

Duration SampleArrivalGap(Rng& rng, Duration mean_gap) {
  // Inverse-CDF sampling of Exp(1/mean): -ln(U) * mean.
  double u = rng.NextDouble();
  if (u <= 0.0) {
    u = 1e-12;
  }
  const double ns = -std::log(u) * static_cast<double>(mean_gap.nanos());
  return Duration::Nanos(static_cast<int64_t>(ns) + 1);
}

std::vector<Arrival> ZipfArrivals(size_t functions, int count, double zipf_s,
                                  Duration mean_gap, uint64_t seed) {
  FAASNAP_CHECK(functions > 0);
  FAASNAP_CHECK(mean_gap > Duration::Zero());
  // Zipf CDF over ranks 1..F.
  std::vector<double> cdf(functions);
  double total = 0;
  for (size_t i = 0; i < functions; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
    cdf[i] = total;
  }
  for (double& v : cdf) {
    v /= total;
  }
  Rng rng(seed);
  std::vector<Arrival> arrivals;
  arrivals.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Draw order is pinned (function, then gap): existing benches rely on the
    // exact sequence for bit-identical schedules.
    const double u = rng.NextDouble();
    const size_t function_index =
        static_cast<size_t>(std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const Duration gap = SampleArrivalGap(rng, mean_gap);
    arrivals.push_back(Arrival{std::min(function_index, functions - 1), gap});
  }
  return arrivals;
}

std::vector<Duration> PoissonArrivalGaps(Duration mean_gap, int count, uint64_t seed) {
  FAASNAP_CHECK(mean_gap > Duration::Zero());
  Rng rng(seed);
  std::vector<Duration> gaps;
  gaps.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    gaps.push_back(SampleArrivalGap(rng, mean_gap));
  }
  return gaps;
}

std::vector<TimedArrival> BuildOpenLoopSchedule(const std::vector<Arrival>& arrivals,
                                                SimTime start, FaultInjector* chaos) {
  std::vector<TimedArrival> schedule;
  schedule.reserve(arrivals.size());
  SimTime at = start;
  for (const Arrival& arrival : arrivals) {
    Duration gap = arrival.gap;
    if (chaos != nullptr) {
      const double multiplier = chaos->ArrivalMultiplier(at);
      if (multiplier > 1.0) {
        const auto squeezed =
            static_cast<int64_t>(static_cast<double>(gap.nanos()) / multiplier);
        gap = Duration::Nanos(squeezed < 1 ? 1 : squeezed);
      }
    }
    at = at + gap;
    schedule.push_back(TimedArrival{arrival.function_index, at});
  }
  return schedule;
}

}  // namespace faasnap

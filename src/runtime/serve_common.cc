#include "src/runtime/serve_common.h"

#include "src/obs/observability.h"

namespace faasnap {

PlannedServe BeginServe(Platform* platform, const ServeParams& params, ServeHealth* health,
                        const ServeCounters& counters) {
  FAASNAP_CHECK(health != nullptr);
  FAASNAP_CHECK(counters.restore_failures != nullptr && counters.quarantines != nullptr &&
                counters.quarantined_serves != nullptr);
  Simulation* sim = platform->sim();
  PlannedServe planned;
  planned.warm = params.warm;
  planned.mode = params.warm ? RestoreMode::kWarm : params.miss_mode;
  if (!params.warm && sim->now() < health->quarantined_until) {
    // The snapshot is benched after repeated failed restores: cold-boot.
    planned.mode = RestoreMode::kColdBoot;
    ++*counters.quarantined_serves;
  }
  SpanTracer* spans = platform->spans();
  if (spans != nullptr) {
    planned.span = spans->Begin(sim->now(), ObsLane::kScheduler, obsname::kSchedulerServe,
                                params.function_index, params.warm ? 1 : 0);
  }
  return planned;
}

void FinishServe(Platform* platform, const PlannedServe& planned, InvocationOutcome outcome,
                 const ServeParams& params, ServeHealth* health, const ServeCounters& counters) {
  Simulation* sim = platform->sim();
  if (!planned.warm && planned.mode != RestoreMode::kColdBoot) {
    if (outcome == InvocationOutcome::kFailed) {
      ++*counters.restore_failures;
      if (++health->consecutive_failures >= params.quarantine_failure_threshold) {
        health->quarantined_until = sim->now() + params.quarantine_backoff;
        health->consecutive_failures = 0;
        ++*counters.quarantines;
      }
    } else {
      health->consecutive_failures = 0;
    }
  }
  SpanTracer* spans = platform->spans();
  if (spans != nullptr) {
    spans->End(planned.span, sim->now());
  }
}

}  // namespace faasnap

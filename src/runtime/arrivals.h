// Arrival-process sampling shared by every serving engine.
//
// ZipfArrivals (HostScheduler) and PoissonArrivalGaps (KeepAliveSimulator)
// used to carry two copies of the same inverse-CDF exponential sampler, down
// to the +1ns quantization bias. This is the one copy, plus the open-loop
// schedule builder that turns relative gaps into absolute virtual arrival
// times (with chaos burst windows compressing the offered gaps).

#ifndef FAASNAP_SRC_RUNTIME_ARRIVALS_H_
#define FAASNAP_SRC_RUNTIME_ARRIVALS_H_

#include <vector>

#include "src/chaos/fault_injector.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"

namespace faasnap {

// One request: which registered function, arriving `gap` after the previous one.
struct Arrival {
  size_t function_index = 0;
  Duration gap;
};

// Exponential(mean_gap) sample via inverse-CDF (-ln(U) * mean), quantized to
// nanoseconds with a +1ns bias so gaps are strictly positive. Exactly one
// NextDouble draw per call; deterministic per RNG state.
Duration SampleArrivalGap(Rng& rng, Duration mean_gap);

// Zipf(s)-popular function choice with exponential inter-arrival gaps: the
// hot/cold skew of the Azure traces (section 2.1). Deterministic per seed.
std::vector<Arrival> ZipfArrivals(size_t functions, int count, double zipf_s,
                                  Duration mean_gap, uint64_t seed);

// Exponentially distributed inter-arrival gaps with the given mean (a Poisson
// arrival process), deterministic per seed.
std::vector<Duration> PoissonArrivalGaps(Duration mean_gap, int count, uint64_t seed);

// An arrival pinned to an absolute virtual time, for open-loop driving.
struct TimedArrival {
  size_t function_index = 0;
  SimTime at;
};

// Converts relative gaps into the absolute open-loop schedule starting at
// `start`: t_i = t_{i-1} + gap_i, independent of completions. With a fault
// injector attached, a gap beginning inside a chaos burst window divides by
// the burst arrival multiplier (the offered load spikes); null keeps the
// nominal schedule. Queries the injector at non-decreasing times, as its lazy
// window renewal requires.
std::vector<TimedArrival> BuildOpenLoopSchedule(const std::vector<Arrival>& arrivals,
                                                SimTime start, FaultInjector* chaos);

}  // namespace faasnap

#endif  // FAASNAP_SRC_RUNTIME_ARRIVALS_H_

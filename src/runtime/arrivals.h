// Open-loop schedule building shared by every serving engine.
//
// The arrival-process samplers themselves (Poisson / bursty / diurnal mixes,
// Zipf popularity) are workload definitions and live in
// src/workloads/arrival_mix.h — included here so every engine and bench keeps
// a single header for arrival machinery. This file owns the one piece that is
// runtime-specific: turning relative gaps into absolute virtual arrival times,
// with chaos burst windows compressing the offered gaps.

#ifndef FAASNAP_SRC_RUNTIME_ARRIVALS_H_
#define FAASNAP_SRC_RUNTIME_ARRIVALS_H_

#include <vector>

#include "src/chaos/fault_injector.h"
#include "src/common/sim_time.h"
#include "src/workloads/arrival_mix.h"

namespace faasnap {

// An arrival pinned to an absolute virtual time, for open-loop driving.
struct TimedArrival {
  size_t function_index = 0;
  SimTime at;
};

// Converts relative gaps into the absolute open-loop schedule starting at
// `start`: t_i = t_{i-1} + gap_i, independent of completions. With a fault
// injector attached, a gap beginning inside a chaos burst window divides by
// the burst arrival multiplier (the offered load spikes); null keeps the
// nominal schedule. Queries the injector at non-decreasing times, as its lazy
// window renewal requires.
std::vector<TimedArrival> BuildOpenLoopSchedule(const std::vector<Arrival>& arrivals,
                                                SimTime start, FaultInjector* chaos);

}  // namespace faasnap

#endif  // FAASNAP_SRC_RUNTIME_ARRIVALS_H_

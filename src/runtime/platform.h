// Platform: the FaaSnap daemon plus the simulated host it runs on.
//
// Owns the simulation clock, the shared page cache, the snapshot storage device,
// the host CPU model, and the snapshot file store. Exposes the two phases of the
// paper's methodology (section 6.1):
//
//   Record(...)  — run a function once on a restored clean snapshot with the
//                  FaaSnap and REAP recorders attached; produce every snapshot
//                  artifact (Figure 5's record phase).
//   Invoke(...)  — restore under a chosen policy and invoke the function,
//                  returning a full InvocationReport (the test phase).
//
// InvokeAsync supports overlapping invocations on the same host for the bursty
// workloads of Figure 10.

#ifndef FAASNAP_SRC_RUNTIME_PLATFORM_H_
#define FAASNAP_SRC_RUNTIME_PLATFORM_H_

#include <functional>
#include <memory>

#include "src/chaos/fault_injector.h"
#include "src/core/function_snapshot.h"
#include "src/core/platform_config.h"
#include "src/metrics/report.h"
#include "src/obs/legacy_tracer.h"
#include "src/obs/observability.h"
#include "src/restore/restore_policy.h"
#include "src/sim/cpu_model.h"
#include "src/sim/simulation.h"
#include "src/storage/storage_router.h"
#include "src/vm/vm.h"
#include "src/workloads/trace_generator.h"

namespace faasnap {

class Platform {
 public:
  explicit Platform(PlatformConfig config = {});

  // Record phase (synchronous: drives the simulation to completion). Caches are
  // dropped afterwards, matching the paper's methodology.
  FunctionSnapshot Record(const TraceGenerator& generator, const WorkloadInput& input);

  // Test phase, synchronous single invocation.
  InvocationReport Invoke(const FunctionSnapshot& snapshot, RestoreMode mode,
                          const TraceGenerator& generator, const WorkloadInput& input);

  // Test phase, asynchronous: the invocation request arrives now; `done` fires on
  // the simulation clock when the function completes. The caller drives sim().
  void InvokeAsync(const FunctionSnapshot& snapshot, RestoreMode mode, InvocationTrace trace,
                   std::function<void(InvocationReport)> done);

  // Admission-layer shedding: the arrival was rejected (queue full) or dropped
  // (queueing deadline) before any restore work ran. Synthesizes the typed
  // report and feeds the same paths as a completed invocation — invoke span
  // covering [arrival_time, now] (all dispatch/queue time for critical-path
  // analysis), outcome counters, forensics non-ok retention, timeline — so
  // every arrival carries exactly one typed outcome. `outcome` must be
  // kShedQueueFull or kShedDeadline.
  InvocationReport ReportShed(const FunctionSnapshot& snapshot, RestoreMode requested_mode,
                              SimTime arrival_time, InvocationOutcome outcome, Status reason);

  // Pressure-driven degradation hook (the admission layer's ladder). While a
  // non-null overrides struct is attached, newly built invocations shrink
  // their readahead windows by `readahead_scale` and cap the prefetch
  // pipeline depth at `loader_depth_cap`. Null (the default) keeps the exact
  // legacy construction path; the struct must outlive its attachment.
  struct PressureOverrides {
    double readahead_scale = 1.0;  // (0, 1]: multiplies every window, floor 1 page
    int loader_depth_cap = 0;      // 0 = uncapped
  };
  void set_pressure_overrides(const PressureOverrides* pressure) { pressure_ = pressure; }
  const PressureOverrides* pressure_overrides() const { return pressure_; }

  // echo 3 > drop_caches between tests (section 6.1).
  void DropCaches();

  // Attaches the unified observability bundle for subsequent Record/Invoke
  // calls: spans on every actor lane (daemon, vCPU, loader, uffd, disk) plus
  // the metrics registry. Null detaches. The bundle must outlive the platform.
  //
  // When the bundle's flight recorder is configured, spans are recorded into
  // its recycling buffer instead of obs->spans (tail-based forensics replaces
  // full tracing); a configured timeline is advanced on the invocation
  // completion path so windows close on virtual time.
  void set_observability(Observability* obs) {
    forensics_ = obs != nullptr && obs->forensics.enabled() ? &obs->forensics : nullptr;
    timeline_ = obs != nullptr && obs->timeline.enabled() ? &obs->timeline : nullptr;
    SpanTracer* spans = nullptr;
    if (obs != nullptr) {
      spans = forensics_ != nullptr ? forensics_->buffer() : &obs->spans;
    }
    SetObservability(spans, obs != nullptr ? &obs->metrics : nullptr);
  }

  // Deprecated: legacy flat-event tracing. Records through the EventTracer's
  // underlying span tracer (no metrics); the tracer must outlive the platform.
  void set_tracer(EventTracer* tracer) {
    forensics_ = nullptr;
    timeline_ = nullptr;
    SetObservability(tracer != nullptr ? &tracer->spans() : nullptr, nullptr);
  }

  SpanTracer* spans() { return spans_; }
  MetricsRegistry* metrics() { return metrics_; }

  Simulation* sim() { return &sim_; }
  // The deterministic fault injector, or null when chaos is disabled.
  FaultInjector* chaos() { return chaos_.get(); }
  PageCache* cache() { return &cache_; }
  BlockDevice* disk() { return &local_disk_; }
  BlockDevice* remote_disk() { return remote_disk_.get(); }
  StorageRouter* storage() { return &storage_; }
  CpuModel* cpu() { return &cpu_; }
  SnapshotStore* store() { return &store_; }
  const PlatformConfig& config() const { return config_; }

 private:
  struct InvocationContext;

  // Combined read stats across local + remote devices.
  BlockDeviceStats CombinedDiskStats() const;
  // Places a newly registered file per the configured tier.
  void PlaceFile(FileId file, StorageTier tier);
  // Rewires the platform-owned components (storage, page cache) and records the
  // pointers handed to per-invocation components.
  void SetObservability(SpanTracer* spans, MetricsRegistry* metrics);
  // Pre-restore artifact validation: checks every snapshot file the requested
  // mode depends on. On a bad primary artifact, picks the fallback rung
  // (on-demand paging from the vanilla memory file) when that file is intact;
  // returns the validation error otherwise. `effective` is always set.
  Status PlanRestoreMode(const FunctionSnapshot& snapshot, RestoreMode requested,
                         RestoreMode* effective, Status* demotion_reason) const;
  void CountOutcome(InvocationOutcome outcome);

  PlatformConfig config_;
  Simulation sim_;
  SimTime daemon_busy_until_;
  PageCache cache_;
  BlockDevice local_disk_;
  std::unique_ptr<BlockDevice> remote_disk_;
  StorageRouter storage_;
  CpuModel cpu_;
  SnapshotStore store_;
  std::unique_ptr<FaultInjector> chaos_;
  SpanTracer* spans_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  FlightRecorder* forensics_ = nullptr;
  MetricsTimeline* timeline_ = nullptr;
  const PressureOverrides* pressure_ = nullptr;
  // Per-outcome invocation counters; registered only when chaos is enabled so
  // fault-free metrics snapshots stay identical to pre-chaos builds.
  Counter* outcome_counters_[kInvocationOutcomeCount] = {};
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_RUNTIME_PLATFORM_H_

// Admission control and pressure-driven degradation for open-loop serving.
//
// A closed-loop host never sees overload: the next arrival waits for the
// previous completion. Open-loop arrivals land at absolute virtual times, so
// offered load can exceed capacity and the host must decide, per arrival,
// whether to run it, queue it, or shed it with a typed outcome. Two pieces:
//
//   AdmissionController — a bounded per-host queue with per-request queueing
//     deadlines, a concurrency cap, memory admission (predicted footprint
//     from the snapshot working set vs. a host budget covering the warm pool
//     plus in-flight restores), and per-function fairness caps. Every offered
//     arrival resolves to exactly one of: hooks.run (it dispatched) or
//     hooks.shed (kShedQueueFull at offer, kShedDeadline after queueing).
//
//   PressureLadder — a hysteresis-banded pressure level computed from memory
//     utilization and the disk demand backlog (StorageRouter::DemandPressure).
//     Rising levels degrade work before any of it is dropped: L1 shrinks
//     readahead windows and caps the prefetch pipeline, L2 demotes miss
//     restores toward WS-only REAP, L3 tightens keep-alive eviction. Shedding
//     is never a ladder rung — it only happens when the bounded queue or the
//     deadlines above fire — and the exit thresholds sit below the entry
//     thresholds so a host recovers after a burst instead of oscillating.
//
// Like everything in the simulation both classes are deterministic: decisions
// depend only on configuration and the virtual clock, never on wall time.

#ifndef FAASNAP_SRC_RUNTIME_ADMISSION_H_
#define FAASNAP_SRC_RUNTIME_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/units.h"
#include "src/metrics/report.h"
#include "src/sim/simulation.h"

namespace faasnap {

struct AdmissionConfig {
  // Invocations allowed in flight at once.
  int max_concurrency = 8;
  // Arrivals allowed to wait for a slot; one more is shed (kShedQueueFull).
  int queue_capacity = 64;
  // A queued arrival still waiting this long after arrival is dropped
  // (kShedDeadline).
  Duration queue_deadline = Duration::Millis(500);
  // Host memory budget covering the idle warm pool (hooks.pinned_bytes) plus
  // the predicted footprint of in-flight work. Zero disables memory admission.
  ByteCount memory_budget_bytes;
  // Per-function fairness: no function may hold more than
  // ceil(fairness_share * max_concurrency) slots while others wait. 0 disables.
  double fairness_share = 0.0;
};

// One offered arrival. `id` is caller-assigned and unique per arrival (it keys
// the pending deadline); `predicted_bytes` is charged against the memory
// budget while the invocation is in flight.
struct AdmissionRequest {
  uint64_t id = 0;
  size_t function_index = 0;
  ByteCount predicted_bytes;
  SimTime arrival;
};

class AdmissionController {
 public:
  struct Hooks {
    // Dispatch: start the invocation now; the owner must call OnComplete with
    // the same request when it finishes. Second arg is the queue wait.
    std::function<void(const AdmissionRequest&, Duration)> run;
    // Typed shed; fires at most once per offered request, synchronously at
    // offer time (kShedQueueFull) or when the deadline event lands
    // (kShedDeadline). Third arg is the time spent waiting.
    std::function<void(const AdmissionRequest&, InvocationOutcome, Duration)> shed;
    // Bytes pinned outside this controller's accounting — the idle warm pool.
    // May be null (counts as 0).
    std::function<ByteCount()> pinned_bytes;
    // Asks the owner to unpin bytes (evict idle warm VMs) so a restore fits.
    // Best effort; may be null.
    std::function<void(ByteCount)> make_room;
  };

  struct Stats {
    int64_t offered = 0;
    int64_t admitted = 0;  // hooks.run fired (immediately or from the queue)
    int64_t queued = 0;    // admitted after a non-zero queue wait
    int64_t shed_queue_full = 0;
    int64_t shed_deadline = 0;
    int64_t fairness_deferrals = 0;  // dispatch scans that skipped a capped function
    int max_in_flight = 0;
    size_t max_queue_depth = 0;
  };

  AdmissionController(Simulation* sim, AdmissionConfig config, Hooks hooks);

  // Offers one arrival at sim->now(). Exactly one of hooks.run / hooks.shed
  // eventually fires for it (run may fire synchronously inside Offer).
  void Offer(AdmissionRequest request);

  // Releases the slot and bytes of a dispatched request and admits queued
  // arrivals that now fit.
  void OnComplete(const AdmissionRequest& request);

  // Scales the effective memory budget (chaos memory-squeeze windows). 1.0
  // restores the configured budget.
  void set_budget_scale(double scale) { budget_scale_ = scale; }

  int in_flight() const { return in_flight_; }
  size_t queue_depth() const { return queue_.size(); }
  ByteCount committed_bytes() const { return committed_bytes_; }
  // (committed + pinned) / effective budget; 0 when memory admission is off.
  double memory_utilization() const;
  const Stats& stats() const { return stats_; }

 private:
  struct QueuedRequest {
    AdmissionRequest request;
  };

  ByteCount effective_budget() const;
  bool AtFairnessCap(size_t function_index) const;
  bool MemoryFits(ByteCount predicted_bytes);
  void Admit(const AdmissionRequest& request);
  // Dispatches queued requests in FIFO order; fairness- or memory-blocked
  // entries are skipped so an eligible later arrival is not head-blocked (the
  // skipped entry keeps its place and its deadline).
  void TryDispatch();
  void OnDeadline(uint64_t id);

  Simulation* sim_;
  AdmissionConfig config_;
  Hooks hooks_;
  std::deque<QueuedRequest> queue_;
  std::vector<int64_t> per_function_in_flight_;  // grown on demand
  int in_flight_ = 0;
  ByteCount committed_bytes_;
  double budget_scale_ = 1.0;
  Stats stats_;
};

struct PressureLadderConfig {
  // Entry thresholds for levels 1..3 and the lower exit thresholds below
  // which the level falls back — the hysteresis band that keeps a host from
  // flapping between degrading and recovering at a boundary.
  double enter[3] = {0.70, 0.85, 0.95};
  double exit[3] = {0.55, 0.75, 0.88};
  // Disk demand backlog (accepted-not-completed demand reads) treated as 100%
  // pressure; the signal is max(memory utilization, demand / this).
  int demand_pressure_full = 16;
  // L1+: readahead window scale and prefetch pipeline-depth cap.
  double l1_readahead_scale = 0.5;
  int l1_loader_depth_cap = 2;
  // L3: keep-alive horizon scale (idle warm VMs reclaimed this much sooner).
  double l3_keep_warm_scale = 0.25;
};

class PressureLadder {
 public:
  explicit PressureLadder(PressureLadderConfig config);

  // Re-evaluates the level from the current memory utilization (committed +
  // pinned over budget) and the disk demand backlog; returns the new level
  // (0 = healthy .. 3). Call on every arrival and completion.
  int Update(double memory_utilization, int demand_pressure);

  int level() const { return level_; }
  int max_level() const { return max_level_; }
  int64_t transitions() const { return transitions_; }

  // Ladder rung knobs at the current level.
  double readahead_scale() const { return level_ >= 1 ? config_.l1_readahead_scale : 1.0; }
  int loader_depth_cap() const { return level_ >= 1 ? config_.l1_loader_depth_cap : 0; }
  bool demote_restore_mode() const { return level_ >= 2; }
  double keep_warm_scale() const { return level_ >= 3 ? config_.l3_keep_warm_scale : 1.0; }

 private:
  PressureLadderConfig config_;
  int level_ = 0;
  int max_level_ = 0;
  int64_t transitions_ = 0;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_RUNTIME_ADMISSION_H_

// Keep-alive policy simulation (paper sections 2.1 and 7.1).
//
// A FaaS host decides, per invocation, whether to serve it from a warm VM kept
// alive since the previous invocation, or — on a keep-alive miss — via a fallback
// path: a snapshot restore (FaaSnap/REAP/Firecracker) or a full cold boot. The
// tradeoff is latency vs memory: a warm VM pins its working set in host memory
// for the whole keep-alive window, while snapshots cost only storage.
//
// KeepAliveSimulator replays an arrival sequence for one function against a
// Platform, classifies each invocation as warm hit or miss, and reports mean
// latency plus the time-averaged resident-memory footprint — quantifying the
// paper's argument that "snapshots can replace cold starts for functions invoked
// less frequently than those that benefit from warm VMs".
//
// The default discipline is closed-loop and serialized (bit-identical to the
// historical behavior). With config.open_loop, arrivals land at absolute
// virtual times and the single function is served by the shared open-loop
// engine (HostScheduler + AdmissionController), so overload produces typed
// sheds instead of unbounded serialization.

#ifndef FAASNAP_SRC_RUNTIME_KEEPALIVE_H_
#define FAASNAP_SRC_RUNTIME_KEEPALIVE_H_

#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/runtime/admission.h"
#include "src/runtime/arrivals.h"
#include "src/runtime/platform.h"

namespace faasnap {

struct KeepAliveConfig {
  // How long an idle VM stays warm after an invocation completes (AWS Lambda
  // keeps functions warm for 15-60 minutes; section 2.1).
  Duration keep_warm = Duration::Seconds(600);
  // What serves a keep-alive miss.
  RestoreMode miss_mode = RestoreMode::kFaasnap;
  // Snapshot quarantine (mirrors HostSchedulerConfig): after this many
  // consecutive failed restores, misses cold-boot for `quarantine_backoff`.
  int quarantine_failure_threshold = 3;
  Duration quarantine_backoff = Duration::Seconds(60);

  // Open-loop serving (see HostSchedulerConfig::open_loop). The budget bounds
  // the idle warm pool in the delegated engine; closed-loop runs ignore it.
  bool open_loop = false;
  ByteCount warm_pool_budget_bytes = GiB(1);
  AdmissionConfig admission;
  PressureLadderConfig ladder;
};

struct KeepAliveStats {
  int64_t invocations = 0;
  int64_t warm_hits = 0;
  int64_t misses = 0;
  int64_t restore_failures = 0;    // misses that ended kFailed
  int64_t quarantines = 0;         // times the snapshot was benched
  int64_t quarantined_serves = 0;  // misses served by cold boot while benched
  RunningStats latency_ms;
  RunningStats miss_latency_ms;
  // Time-averaged bytes of host memory pinned by the idle warm VM.
  double avg_warm_resident_bytes = 0;
  // Total simulated span covered by the arrival sequence.
  Duration span;

  // Open-loop fields; all zero in closed-loop runs.
  int64_t arrivals = 0;
  int64_t shed_queue_full = 0;
  int64_t shed_deadline = 0;
  int64_t queued = 0;
  int max_in_flight = 0;
  int max_pressure_level = 0;
  int final_pressure_level = 0;
  Duration drain_time;

  double warm_hit_rate() const {
    return invocations == 0 ? 0.0
                            : static_cast<double>(warm_hits) / static_cast<double>(invocations);
  }
  int64_t shed() const { return shed_queue_full + shed_deadline; }
};

class KeepAliveSimulator {
 public:
  // `platform`, `snapshot`, and `generator` must outlive the simulator. The
  // snapshot must have been recorded on this platform.
  KeepAliveSimulator(Platform* platform, const FunctionSnapshot* snapshot,
                     const TraceGenerator* generator);

  // Serves one invocation per gap. Closed loop (default): arrivals are
  // serialized — a request arriving while the previous one runs starts right
  // after it — and page caches are dropped on misses beyond the keep-warm
  // horizon to model long idle periods. Open loop: absolute arrival times
  // under admission control.
  KeepAliveStats Run(const std::vector<Duration>& gaps, const KeepAliveConfig& config);

 private:
  KeepAliveStats RunOpenLoop(const std::vector<Duration>& gaps, const KeepAliveConfig& config);

  Platform* platform_;
  const FunctionSnapshot* snapshot_;
  const TraceGenerator* generator_;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_RUNTIME_KEEPALIVE_H_

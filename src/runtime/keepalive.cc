#include "src/runtime/keepalive.h"

#include <cmath>

#include "src/obs/observability.h"

namespace faasnap {

std::vector<Duration> PoissonArrivalGaps(Duration mean_gap, int count, uint64_t seed) {
  FAASNAP_CHECK(mean_gap > Duration::Zero());
  Rng rng(seed);
  std::vector<Duration> gaps;
  gaps.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Inverse-CDF sampling of Exp(1/mean): -ln(U) * mean.
    double u = rng.NextDouble();
    if (u <= 0.0) {
      u = 1e-12;
    }
    const double ns = -std::log(u) * static_cast<double>(mean_gap.nanos());
    gaps.push_back(Duration::Nanos(static_cast<int64_t>(ns) + 1));
  }
  return gaps;
}

KeepAliveSimulator::KeepAliveSimulator(Platform* platform, const FunctionSnapshot* snapshot,
                                       const TraceGenerator* generator)
    : platform_(platform), snapshot_(snapshot), generator_(generator) {
  FAASNAP_CHECK(platform_ != nullptr && snapshot_ != nullptr && generator_ != nullptr);
}

KeepAliveStats KeepAliveSimulator::Run(const std::vector<Duration>& gaps,
                                       const KeepAliveConfig& config) {
  KeepAliveStats stats;
  Simulation* sim = platform_->sim();
  const SimTime span_start = sim->now();
  const FunctionSpec& spec = generator_->spec();
  const double ws_bytes =
      static_cast<double>(PagesToBytes(snapshot_->record_touched.page_count()));

  SimTime last_completion = sim->now();
  bool have_previous = false;
  double warm_byte_time = 0;  // bytes * seconds of pinned warm memory
  uint64_t arrival_seed = 0xA551;
  int consecutive_failures = 0;
  SimTime quarantined_until;

  SpanTracer* spans = platform_->spans();
  MetricsRegistry* metrics = platform_->metrics();
  Counter* warm_hits_metric = nullptr;
  Counter* misses_metric = nullptr;
  if (metrics != nullptr) {
    warm_hits_metric = metrics->GetCounter("keepalive.warm_hits");
    misses_metric = metrics->GetCounter("keepalive.misses");
  }

  for (const Duration& gap : gaps) {
    // Advance the clock to the arrival (requests arriving while the previous
    // invocation ran are served right after it completes).
    const SimTime arrival = last_completion + gap;
    sim->RunUntil(arrival);

    const Duration idle = sim->now() - last_completion;
    const bool warm = have_previous && idle <= config.keep_warm;
    if (have_previous) {
      // The warm VM pinned its working set while idle, until hit or eviction.
      warm_byte_time += ws_bytes * Min(idle, config.keep_warm).seconds();
    }
    if (!warm) {
      // Long idle: the VM was reclaimed and other tenants recycled the page cache.
      platform_->DropCaches();
    }

    WorkloadInput input = MakeInputA(spec);
    if (!spec.fixed_input) {
      input.content_seed = ++arrival_seed;
    }
    RestoreMode mode = warm ? RestoreMode::kWarm : config.miss_mode;
    if (!warm && sim->now() < quarantined_until) {
      // The snapshot is benched after repeated failed restores: cold-boot.
      mode = RestoreMode::kColdBoot;
      stats.quarantined_serves++;
    }
    const SpanId serve_span =
        spans != nullptr
            ? spans->Begin(sim->now(), ObsLane::kScheduler, obsname::kSchedulerServe, 0,
                           warm ? 1 : 0)
            : kNoSpan;
    bool done = false;
    Duration latency;
    InvocationOutcome outcome = InvocationOutcome::kOk;
    platform_->InvokeAsync(*snapshot_, mode, generator_->Generate(input),
                           [&](InvocationReport report) {
                             latency = report.total_time();
                             outcome = report.outcome;
                             done = true;
                           });
    sim->Run();
    FAASNAP_CHECK(done);
    if (spans != nullptr) {
      spans->End(serve_span, sim->now());
    }

    stats.invocations++;
    if (warm) {
      stats.warm_hits++;
    } else {
      stats.misses++;
      if (mode != RestoreMode::kColdBoot) {
        if (outcome == InvocationOutcome::kFailed) {
          stats.restore_failures++;
          if (++consecutive_failures >= config.quarantine_failure_threshold) {
            quarantined_until = sim->now() + config.quarantine_backoff;
            consecutive_failures = 0;
            stats.quarantines++;
          }
        } else {
          consecutive_failures = 0;
        }
      }
    }
    if (warm_hits_metric != nullptr) {
      (warm ? warm_hits_metric : misses_metric)->Add(1);
    }
    stats.latency_ms.Record(latency.millis());
    // The VM is resident during execution too.
    warm_byte_time += ws_bytes * latency.seconds();
    last_completion = sim->now();
    // A failed invocation leaves no VM behind to keep warm.
    have_previous = outcome != InvocationOutcome::kFailed;
  }

  stats.span = sim->now() - span_start;
  if (stats.span > Duration::Zero()) {
    stats.avg_warm_resident_bytes = warm_byte_time / stats.span.seconds();
  }
  return stats;
}

}  // namespace faasnap

#include "src/runtime/keepalive.h"

#include "src/obs/observability.h"
#include "src/runtime/host_scheduler.h"
#include "src/runtime/serve_common.h"

namespace faasnap {

KeepAliveSimulator::KeepAliveSimulator(Platform* platform, const FunctionSnapshot* snapshot,
                                       const TraceGenerator* generator)
    : platform_(platform), snapshot_(snapshot), generator_(generator) {
  FAASNAP_CHECK(platform_ != nullptr && snapshot_ != nullptr && generator_ != nullptr);
}

KeepAliveStats KeepAliveSimulator::RunOpenLoop(const std::vector<Duration>& gaps,
                                               const KeepAliveConfig& config) {
  // Single-function open loop: delegate to the shared serving engine.
  HostSchedulerConfig host_config;
  host_config.warm_pool_budget_bytes = config.warm_pool_budget_bytes;
  host_config.keep_warm = config.keep_warm;
  host_config.miss_mode = config.miss_mode;
  host_config.quarantine_failure_threshold = config.quarantine_failure_threshold;
  host_config.quarantine_backoff = config.quarantine_backoff;
  host_config.open_loop = true;
  host_config.admission = config.admission;
  host_config.ladder = config.ladder;
  HostScheduler scheduler(platform_, host_config);
  const size_t index = scheduler.AddRecordedFunction(snapshot_, generator_);

  std::vector<Arrival> arrivals;
  arrivals.reserve(gaps.size());
  for (const Duration& gap : gaps) {
    arrivals.push_back(Arrival{index, gap});
  }
  const HostSchedulerStats host = scheduler.Run(arrivals);

  KeepAliveStats stats;
  stats.invocations = host.invocations;
  stats.warm_hits = host.warm_hits;
  stats.misses = host.misses;
  stats.restore_failures = host.restore_failures;
  stats.quarantines = host.quarantines;
  stats.quarantined_serves = host.quarantined_serves;
  stats.latency_ms = host.latency_ms;
  stats.miss_latency_ms = host.miss_latency_ms;
  stats.avg_warm_resident_bytes = host.avg_pool_bytes;
  stats.span = host.span;
  stats.arrivals = host.arrivals;
  stats.shed_queue_full = host.shed_queue_full;
  stats.shed_deadline = host.shed_deadline;
  stats.queued = host.queued;
  stats.max_in_flight = host.max_in_flight;
  stats.max_pressure_level = host.max_pressure_level;
  stats.final_pressure_level = host.final_pressure_level;
  stats.drain_time = host.drain_time;
  return stats;
}

KeepAliveStats KeepAliveSimulator::Run(const std::vector<Duration>& gaps,
                                       const KeepAliveConfig& config) {
  if (config.open_loop) {
    return RunOpenLoop(gaps, config);
  }
  KeepAliveStats stats;
  Simulation* sim = platform_->sim();
  const SimTime span_start = sim->now();
  const FunctionSpec& spec = generator_->spec();
  const double ws_bytes = static_cast<double>(
      PagesToBytes(PageCount::FromPages(snapshot_->record_touched.page_count())).value());

  SimTime last_completion = sim->now();
  bool have_previous = false;
  double warm_byte_time = 0;  // bytes * seconds of pinned warm memory
  uint64_t arrival_seed = 0xA551;
  ServeHealth health;
  const ServeCounters counters{&stats.restore_failures, &stats.quarantines,
                               &stats.quarantined_serves};

  MetricsRegistry* metrics = platform_->metrics();
  Counter* warm_hits_metric = nullptr;
  Counter* misses_metric = nullptr;
  if (metrics != nullptr) {
    warm_hits_metric = metrics->GetCounter("keepalive.warm_hits");
    misses_metric = metrics->GetCounter("keepalive.misses");
  }

  for (const Duration& gap : gaps) {
    // Advance the clock to the arrival (requests arriving while the previous
    // invocation ran are served right after it completes).
    const SimTime arrival = last_completion + gap;
    sim->RunUntil(arrival);

    const Duration idle = sim->now() - last_completion;
    const bool warm = have_previous && idle <= config.keep_warm;
    if (have_previous) {
      // The warm VM pinned its working set while idle, until hit or eviction.
      warm_byte_time += ws_bytes * Min(idle, config.keep_warm).seconds();
    }
    if (!warm) {
      // Long idle: the VM was reclaimed and other tenants recycled the page cache.
      platform_->DropCaches();
    }

    WorkloadInput input = MakeInputA(spec);
    if (!spec.fixed_input) {
      input.content_seed = ++arrival_seed;
    }
    ServeParams params;
    params.warm = warm;
    params.miss_mode = config.miss_mode;
    params.quarantine_failure_threshold = config.quarantine_failure_threshold;
    params.quarantine_backoff = config.quarantine_backoff;
    params.function_index = 0;
    const PlannedServe planned = BeginServe(platform_, params, &health, counters);
    bool done = false;
    Duration latency;
    InvocationOutcome outcome = InvocationOutcome::kOk;
    platform_->InvokeAsync(*snapshot_, planned.mode, generator_->Generate(input),
                           [&](InvocationReport report) {
                             latency = report.total_time();
                             outcome = report.outcome;
                             done = true;
                           });
    sim->Run();
    FAASNAP_CHECK(done);
    FinishServe(platform_, planned, outcome, params, &health, counters);

    stats.invocations++;
    if (warm) {
      stats.warm_hits++;
    } else {
      stats.misses++;
      stats.miss_latency_ms.Record(latency.millis());
    }
    if (warm_hits_metric != nullptr) {
      (warm ? warm_hits_metric : misses_metric)->Add(1);
    }
    stats.latency_ms.Record(latency.millis());
    // The VM is resident during execution too.
    warm_byte_time += ws_bytes * latency.seconds();
    last_completion = sim->now();
    // A failed invocation leaves no VM behind to keep warm.
    have_previous = outcome != InvocationOutcome::kFailed;
  }

  stats.span = sim->now() - span_start;
  if (stats.span > Duration::Zero()) {
    stats.avg_warm_resident_bytes = warm_byte_time / stats.span.seconds();
  }
  return stats;
}

}  // namespace faasnap

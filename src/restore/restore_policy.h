// Snapshot restore policies: the systems compared in the evaluation.
//
//   Warm                  — warm VM cached in memory (section 3.1),
//   Firecracker           — vanilla lazy restore, whole-file mapping + on-demand
//                           host paging,
//   Cached                — Firecracker with the memory file preloaded into the
//                           page cache (upper-bound reference),
//   REAP                  — blocking working-set fetch (page-cache-bypassing) +
//                           userfaultfd handling of out-of-working-set faults,
//   FaaSnap concurrent    — Figure 9 ablation: whole-file mapping + a concurrent
//                           loader reading working-set pages in address order,
//   FaaSnap per-region    — Figure 9 ablation: per-region mapping + group-ordered
//                           loader reading scattered regions from the memory file,
//   FaaSnap               — all techniques: per-region hierarchy + compact loading
//                           set file read sequentially by the concurrent loader.
//
// A policy contributes three pieces to an invocation: memory setup (mappings,
// preloads, uffd registration — may take simulated time), an optional prefetch
// plan started when the invocation request arrives, and fetch metrics.

#ifndef FAASNAP_SRC_RESTORE_RESTORE_POLICY_H_
#define FAASNAP_SRC_RESTORE_RESTORE_POLICY_H_

#include <functional>
#include <memory>
#include <string_view>

#include "src/core/function_snapshot.h"
#include "src/core/platform_config.h"
#include "src/core/prefetch_loader.h"
#include "src/mem/fault_engine.h"
#include "src/sim/simulation.h"
#include "src/snapshot/snapshot_files.h"

namespace faasnap {

enum class RestoreMode : int {
  kWarm = 0,
  kColdBoot,  // no snapshot: boot the VM and initialize the runtime from scratch
  kFirecracker,
  kCached,
  kReap,
  kFaasnapConcurrentOnly,
  kFaasnapPerRegion,
  kFaasnap,
};

std::string_view RestoreModeName(RestoreMode mode);

// Per-invocation environment handed to the policy. All pointers outlive the policy.
struct RestoreEnv {
  Simulation* sim = nullptr;
  PageCache* cache = nullptr;
  StorageRouter* storage = nullptr;
  AddressSpace* space = nullptr;
  FaultEngine* engine = nullptr;
  const FunctionSnapshot* snapshot = nullptr;
  const PlatformConfig* config = nullptr;
  // Optional tracing: the platform's span tracer and the enclosing setup span,
  // parents for spans the policy opens during SetupMemory (REAP's blocking
  // fetch and the disk reads it issues). Null/kNoSpan when tracing is off.
  SpanTracer* spans = nullptr;
  SpanId setup_span = kNoSpan;
  // Failure-aware restore: a policy that had to degrade during SetupMemory
  // (e.g. REAP's working-set fetch failing terminally, falling back to pure
  // on-demand uffd paging) records why and what it fell back to. The platform
  // folds these into the InvocationReport as a degraded outcome.
  Status degrade_status;
  std::string degrade_label;
};

class RestorePolicy {
 public:
  static std::unique_ptr<RestorePolicy> Create(RestoreMode mode);

  virtual ~RestorePolicy() = default;
  virtual RestoreMode mode() const = 0;

  // Fixed setup work before memory provisioning (VMM process restore). Warm VMs
  // skip it; snapshot systems pay SetupCostModel::vmm_restore.
  virtual Duration BaseSetupCost(const RestoreEnv& env) const;

  // Provisions guest memory (mappings, preloads, installs, uffd) and calls
  // `ready` on the simulation clock when the VM may start executing.
  virtual void SetupMemory(RestoreEnv* env, std::function<void()> ready) = 0;

  // The prefetch plan started when the invocation request arrives (concurrently
  // with setup). Empty = no concurrent loader.
  virtual std::vector<PrefetchItem> PrefetchPlan(const RestoreEnv&) const { return {}; }

  // Fetch work performed synchronously inside SetupMemory (REAP's working-set
  // fetch); reported as Table 3's fetch time/size for blocking fetchers.
  virtual Duration blocking_fetch_time() const { return Duration::Zero(); }
  virtual ByteCount blocking_fetch_bytes() const { return ByteCount::Zero(); }
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_RESTORE_RESTORE_POLICY_H_

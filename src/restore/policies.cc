#include "src/restore/restore_policy.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/common/units.h"
#include "src/obs/observability.h"
#include "src/storage/read_class.h"

namespace faasnap {

std::string_view RestoreModeName(RestoreMode mode) {
  switch (mode) {
    case RestoreMode::kWarm:
      return "warm";
    case RestoreMode::kColdBoot:
      return "cold-boot";
    case RestoreMode::kFirecracker:
      return "firecracker";
    case RestoreMode::kCached:
      return "cached";
    case RestoreMode::kReap:
      return "reap";
    case RestoreMode::kFaasnapConcurrentOnly:
      return "con-paging";
    case RestoreMode::kFaasnapPerRegion:
      return "per-region";
    case RestoreMode::kFaasnap:
      return "faasnap";
  }
  return "unknown";
}

Duration RestorePolicy::BaseSetupCost(const RestoreEnv& env) const {
  // All snapshot systems pay the VMM process restore. (Daemon dispatch is
  // accounted by the Platform's serialized request queue.)
  return env.config->setup_costs.vmm_restore;
}

namespace {

// Schedules `ready` after the cost of the mmap calls just performed.
void FinishMappingSetup(RestoreEnv* env, uint64_t mmap_calls, std::function<void()> ready) {
  const Duration cost = env->config->host_costs.mmap_call * static_cast<int64_t>(mmap_calls);
  env->sim->ScheduleAfter(cost, std::move(ready));
}

// Whole-file mapping: one mmap covering the entire guest space (vanilla
// Firecracker restore).
void MapWholeFile(RestoreEnv* env, const MemoryFile& memory) {
  env->space->Map({.guest = {0, env->snapshot->guest_pages.value()},
                   .kind = BackingKind::kFile,
                   .file = memory.id,
                   .file_start = 0});
}

// Per-region hierarchy (Figure 4): anonymous base layer, then non-zero regions of
// the memory file MAP_FIXED'd over it.
uint64_t MapPerRegionBase(RestoreEnv* env, const MemoryFile& memory) {
  env->space->Map({.guest = {0, env->snapshot->guest_pages.value()}, .kind = BackingKind::kAnonymous});
  for (const PageRange& r : memory.nonzero.ranges()) {
    env->space->Map({.guest = r,
                     .kind = BackingKind::kFile,
                     .file = memory.id,
                     .file_start = r.first});
  }
  return 1 + memory.nonzero.range_count();
}

// Huge-page lever: marks every 2 MiB-aligned guest window whose loading-set
// coverage meets the density threshold as huge-eligible. Dense windows sit
// inside one (merge-widened) loading region, so the first fault can install
// the whole window; edge windows that pass the threshold but straddle mapping
// boundaries split back to 4 KiB on touch (the copy-on-touch fallback).
void MarkHugeRegionsFromLoadingSet(RestoreEnv* env) {
  const FaultPathConfig& fp = env->config->fault_path;
  if (!fp.huge_pages) {
    return;
  }
  env->space->ConfigureHugeRegions(fp.huge_region_pages);
  const uint64_t region_stride = fp.huge_region_pages.value();
  const uint64_t guest_end = env->snapshot->guest_pages.value();
  std::map<PageIndex, uint64_t> covered;  // window start -> loading-set pages in it
  for (const LoadingRegion& region : env->snapshot->loading_set.regions) {
    PageIndex p = region.guest.first;
    while (p < region.guest.end()) {
      const PageIndex window = p - p % region_stride;
      const PageIndex window_end = std::min(window + region_stride, guest_end);
      const PageIndex segment_end = std::min(region.guest.end(), window_end);
      covered[window] += segment_end - p;
      p = segment_end;
    }
  }
  for (const auto& [window, pages] : covered) {
    // Windows clamped at the guest end cannot be mapped huge.
    if (window + region_stride > guest_end) {
      continue;
    }
    if (static_cast<double>(pages) >=
        fp.huge_density_threshold * static_cast<double>(region_stride)) {
      env->space->MarkHugeEligible(window);
    }
  }
}

class WarmPolicy final : public RestorePolicy {
 public:
  RestoreMode mode() const override { return RestoreMode::kWarm; }

  Duration BaseSetupCost(const RestoreEnv&) const override {
    // The VM is alive; only request dispatch (handled by the daemon queue) happens.
    return Duration::Zero();
  }

  void SetupMemory(RestoreEnv* env, std::function<void()> ready) override {
    // Warm VMs booted from images map guest memory to host anonymous memory; the
    // record invocation's pages are already resident (section 3.3).
    env->space->Map({.guest = {0, env->snapshot->guest_pages.value()}, .kind = BackingKind::kAnonymous});
    for (const PageRange& r : env->snapshot->record_touched.ranges()) {
      env->space->SetInstallState(r, PageInstallState::kPresent);
    }
    ready();
  }
};

// No snapshot exists: boot the VM from its image and initialize the runtime.
// Guest memory is plain anonymous memory; the setup cost dominates everything
// (section 2.1: cold starts take seconds while most invocations are sub-second).
class ColdBootPolicy final : public RestorePolicy {
 public:
  RestoreMode mode() const override { return RestoreMode::kColdBoot; }

  Duration BaseSetupCost(const RestoreEnv& env) const override {
    const auto& costs = env.config->setup_costs;
    return costs.cold_boot_base +
           costs.cold_init_per_page *
               static_cast<int64_t>(env.snapshot->record_touched.page_count());
  }

  void SetupMemory(RestoreEnv* env, std::function<void()> ready) override {
    env->space->Map({.guest = {0, env->snapshot->guest_pages.value()}, .kind = BackingKind::kAnonymous});
    // Initialization leaves the runtime state resident, like a warm VM.
    for (const PageRange& r : env->snapshot->record_touched.ranges()) {
      env->space->SetInstallState(r, PageInstallState::kPresent);
    }
    ready();
  }
};

class FirecrackerPolicy final : public RestorePolicy {
 public:
  RestoreMode mode() const override { return RestoreMode::kFirecracker; }

  void SetupMemory(RestoreEnv* env, std::function<void()> ready) override {
    MapWholeFile(env, env->snapshot->memory_vanilla);
    FinishMappingSetup(env, 1, std::move(ready));
  }
};

class CachedPolicy final : public RestorePolicy {
 public:
  RestoreMode mode() const override { return RestoreMode::kCached; }

  void SetupMemory(RestoreEnv* env, std::function<void()> ready) override {
    // The entire memory file sits in the page cache before the test (the preload
    // is not charged: Cached is the in-memory reference point, section 6.2).
    env->cache->Insert(env->snapshot->memory_vanilla.id,
                       PageRange{0, env->snapshot->guest_pages.value()});
    MapWholeFile(env, env->snapshot->memory_vanilla);
    FinishMappingSetup(env, 1, std::move(ready));
  }
};

// REAP's userspace fault handler: out-of-working-set faults are served by the
// monitor pread()ing the original memory file (section 3.3).
class ReapUffdHandler final : public UffdHandler {
 public:
  void Bind(RestoreEnv* env) { env_ = env; }

  void HandleFault(PageIndex guest_page, std::function<void(const Status&)> done) override {
    // Whole-file mapping: guest page == memory file page.
    env_->engine->EnsureFilePage(
        env_->snapshot->memory_vanilla.id, guest_page, /*charge_to_faults=*/true,
        [this, done = std::move(done)](const Status& status,
                                       PageCache::PageState state) mutable {
          if (!status.ok()) {
            done(status);
            return;
          }
          // The cached-pread charge applies only when the page was already in
          // the cache: on a miss the monitor's pread *is* the device read just
          // accounted, so charging the cached-copy cost again would double-pay.
          if (state == PageCache::PageState::kPresent) {
            env_->sim->ScheduleAfter(env_->config->host_costs.cached_pread_page,
                                     [done = std::move(done)] { done(OkStatus()); });
          } else {
            done(OkStatus());
          }
        });
  }

  void HandleFaultBatched(PageIndex guest_page,
                          std::function<void(const Status&, PageRange)> done) override {
    const FileId mem = env_->snapshot->memory_vanilla.id;
    env_->engine->EnsureFilePage(
        mem, guest_page, /*charge_to_faults=*/true,
        [this, mem, guest_page, done = std::move(done)](const Status& status,
                                                        PageCache::PageState state) mutable {
          if (!status.ok()) {
            done(status, PageRange{guest_page, 1});
            return;
          }
          // The monitor's pread buffer covers the contiguous cached run around
          // the faulting page (whole-file mapping: guest page == file page);
          // offer it for one multi-page UFFDIO_COPY. Weighted toward pages
          // after the fault — that is where a streaming guest goes next.
          const uint64_t max_batch =
              std::max<uint64_t>(env_->config->fault_path.uffd_batch_max_pages.value(), 1);
          const uint64_t before = max_batch / 4;
          PageRange run =
              env_->cache->PresentRunAround(mem, guest_page, before, max_batch - before - 1);
          if (run.empty()) {
            run = PageRange{guest_page, 1};
          }
          auto finish = [run, done = std::move(done)]() mutable { done(OkStatus(), run); };
          if (state == PageCache::PageState::kPresent) {
            env_->sim->ScheduleAfter(env_->config->host_costs.cached_pread_page,
                                     std::move(finish));
          } else {
            finish();
          }
        });
  }

 private:
  RestoreEnv* env_ = nullptr;
};

class ReapPolicy final : public RestorePolicy {
 public:
  RestoreMode mode() const override { return RestoreMode::kReap; }

  void SetupMemory(RestoreEnv* env, std::function<void()> ready) override {
    MapWholeFile(env, env->snapshot->memory_vanilla);
    handler_.Bind(env);
    PageRangeSet whole;
    whole.Add(0, env->snapshot->guest_pages.value());
    env->engine->RegisterUffd(std::move(whole), &handler_);

    // Blocking fetch: the entire working set file in one read that bypasses the
    // page cache (maximizing bandwidth but forgoing cache sharing, section 6.6),
    // then UFFDIO_COPY-install every page before the VM starts.
    const PageCount ws_pages = env->snapshot->reap_ws.size_pages();
    const SimTime fetch_start = env->sim->now();
    fetch_bytes_ = PagesToBytes(ws_pages);
    if (ws_pages.is_zero()) {
      FinishMappingSetup(env, 1, std::move(ready));
      return;
    }
    // Spans the read plus the UFFDIO_COPY install burst — the interval the VM
    // start is blocked on the working set (Table 3's fetch time).
    const SpanId fetch_span =
        env->spans != nullptr
            ? env->spans->Begin(fetch_start, ObsLane::kUffd, obsname::kReapFetch,
                                ws_pages.value(), 0,
                                env->setup_span)
            : kNoSpan;
    env->storage->ReadWithStatus(env->snapshot->reap_ws.id, 0, fetch_bytes_.value(),
                                 [this, env, ws_pages, fetch_start, fetch_span,
                                  ready = std::move(ready)](Status status) mutable {
      if (!status.ok()) {
        // The working-set fetch failed terminally: degrade to pure on-demand
        // uffd paging. No page is preinstalled; every working-set fault goes
        // through the monitor's pread of the memory file instead. The VM still
        // starts — slower, but correct.
        fetch_bytes_ = ByteCount::Zero();
        fetch_time_ = env->sim->now() - fetch_start;
        env->degrade_status = std::move(status);
        env->degrade_label = "reap-on-demand";
        if (env->spans != nullptr) {
          env->spans->End(fetch_span, env->sim->now(), 0);
        }
        FinishMappingSetup(env, 1, std::move(ready));
        return;
      }
      // Batched lever: one UFFDIO_COPY ioctl per contiguous run of the working
      // set instead of one per page — cost and install both become O(runs).
      const bool batched = env->config->fault_path.batched_uffd_install;
      Duration install;
      PageRangeSet ws_runs;
      if (batched) {
        for (PageIndex page : env->snapshot->reap_ws.guest_pages) {
          ws_runs.AddPage(page);
        }
        for (const PageRange& r : ws_runs.ranges()) {
          install += env->config->host_costs.uffd_batch_install +
                     env->config->host_costs.uffd_batch_per_page *
                         static_cast<int64_t>(r.count);
        }
      } else {
        install =
            env->config->host_costs.uffd_copy_page * static_cast<int64_t>(ws_pages.value());
      }
      env->sim->ScheduleAfter(install, [this, env, batched, ws_runs = std::move(ws_runs),
                                        fetch_start, fetch_span,
                                        ready = std::move(ready)]() mutable {
        if (batched) {
          for (const PageRange& r : ws_runs.ranges()) {
            env->space->SetInstallState(r, PageInstallState::kSoftPresent);
            env->engine->NoteBatchInstall(r.count);
          }
        } else {
          for (PageIndex page : env->snapshot->reap_ws.guest_pages) {
            env->space->SetInstallState(page, PageInstallState::kSoftPresent);
          }
        }
        env->space->NoteAnonCopies(env->snapshot->reap_ws.size_pages().value());
        fetch_time_ = env->sim->now() - fetch_start;
        if (env->spans != nullptr) {
          env->spans->End(fetch_span, env->sim->now(), fetch_bytes_.value());
        }
        FinishMappingSetup(env, 1, std::move(ready));
      });
    }, fetch_span, ReadClass::kPrefetch);
  }

  Duration blocking_fetch_time() const override { return fetch_time_; }
  ByteCount blocking_fetch_bytes() const override { return fetch_bytes_; }

 private:
  ReapUffdHandler handler_;
  Duration fetch_time_;
  ByteCount fetch_bytes_;
};

// Figure 9 ablation step 1: concurrent paging only. Vanilla whole-file mapping;
// the loader prefetches recorded working-set pages in address order from the
// memory file.
class ConcurrentOnlyPolicy final : public RestorePolicy {
 public:
  RestoreMode mode() const override { return RestoreMode::kFaasnapConcurrentOnly; }

  void SetupMemory(RestoreEnv* env, std::function<void()> ready) override {
    MapWholeFile(env, env->snapshot->memory_vanilla);
    FinishMappingSetup(env, 1, std::move(ready));
  }

  std::vector<PrefetchItem> PrefetchPlan(const RestoreEnv& env) const override {
    std::vector<PrefetchItem> items;
    const PageRangeSet working_set = env.snapshot->ws_groups.AllPages();
    for (const PageRange& r : working_set.ranges()) {
      items.push_back(PrefetchItem{env.snapshot->memory_vanilla.id, r});
    }
    return items;
  }
};

// Figure 9 ablation step 2: per-region mapping + group-ordered loader, but no
// compact loading set file — the loader reads the (scattered) loading regions
// straight from the memory file.
class PerRegionPolicy final : public RestorePolicy {
 public:
  RestoreMode mode() const override { return RestoreMode::kFaasnapPerRegion; }

  void SetupMemory(RestoreEnv* env, std::function<void()> ready) override {
    const uint64_t calls = MapPerRegionBase(env, env->snapshot->memory_sanitized);
    MarkHugeRegionsFromLoadingSet(env);
    FinishMappingSetup(env, calls, std::move(ready));
  }

  std::vector<PrefetchItem> PrefetchPlan(const RestoreEnv& env) const override {
    std::vector<PrefetchItem> items;
    for (const LoadingRegion& region : env.snapshot->loading_set.regions) {
      items.push_back(PrefetchItem{env.snapshot->memory_sanitized.id, region.guest});
    }
    return items;
  }
};

// Full FaaSnap: per-region hierarchy with loading regions mapped to the compact
// loading set file, which the loader streams sequentially.
class FaasnapPolicy final : public RestorePolicy {
 public:
  RestoreMode mode() const override { return RestoreMode::kFaasnap; }

  void SetupMemory(RestoreEnv* env, std::function<void()> ready) override {
    uint64_t calls = MapPerRegionBase(env, env->snapshot->memory_sanitized);
    for (const LoadingRegion& region : env->snapshot->loading_set.regions) {
      env->space->Map({.guest = region.guest,
                       .kind = BackingKind::kFile,
                       .file = env->snapshot->loading_set.id,
                       .file_start = region.file_start});
      ++calls;
    }
    MarkHugeRegionsFromLoadingSet(env);
    FinishMappingSetup(env, calls, std::move(ready));
  }

  std::vector<PrefetchItem> PrefetchPlan(const RestoreEnv& env) const override {
    if (env.snapshot->loading_set.total_pages.is_zero()) {
      return {};
    }
    return {PrefetchItem{env.snapshot->loading_set.id,
                         PageRange{0, env.snapshot->loading_set.total_pages.value()}}};
  }
};

}  // namespace

std::unique_ptr<RestorePolicy> RestorePolicy::Create(RestoreMode mode) {
  switch (mode) {
    case RestoreMode::kWarm:
      return std::make_unique<WarmPolicy>();
    case RestoreMode::kColdBoot:
      return std::make_unique<ColdBootPolicy>();
    case RestoreMode::kFirecracker:
      return std::make_unique<FirecrackerPolicy>();
    case RestoreMode::kCached:
      return std::make_unique<CachedPolicy>();
    case RestoreMode::kReap:
      return std::make_unique<ReapPolicy>();
    case RestoreMode::kFaasnapConcurrentOnly:
      return std::make_unique<ConcurrentOnlyPolicy>();
    case RestoreMode::kFaasnapPerRegion:
      return std::make_unique<PerRegionPolicy>();
    case RestoreMode::kFaasnap:
      return std::make_unique<FaasnapPolicy>();
  }
  FAASNAP_CHECK(false && "unknown restore mode");
  return nullptr;
}

}  // namespace faasnap

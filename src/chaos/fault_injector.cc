#include "src/chaos/fault_injector.h"

#include <cmath>
#include <utility>

namespace faasnap {

namespace {

constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

// Exponential with the given mean, quantized to integer nanoseconds. Bounded
// below by 1ns so the outage renewal process always advances.
Duration Exponential(Rng& rng, Duration mean) {
  const double u = rng.NextDouble();
  const double ns = -static_cast<double>(mean.nanos()) * std::log(1.0 - u);
  return Duration::Nanos(ns < 1.0 ? 1 : static_cast<int64_t>(ns));
}

}  // namespace

FaultInjector::FaultInjector(Simulation* sim, ChaosConfig config)
    : sim_(sim),
      config_(config),
      stall_rng_(config.seed ^ 0x57A11ULL * kGolden),
      outage_rng_(config.seed ^ 0x0A7A6EULL * kGolden),
      outage_start_(SimTime::FromNanos(0)),
      outage_end_(SimTime::FromNanos(0)) {
  FAASNAP_CHECK(sim_ != nullptr);
  if (config_.remote_outage_mean_gap > Duration::Zero()) {
    outage_start_ = SimTime::FromNanos(0) + Exponential(outage_rng_, config_.remote_outage_mean_gap);
    outage_end_ = outage_start_ + config_.remote_outage_duration;
  }
}

void FaultInjector::set_observability(MetricsRegistry* metrics) {
  static constexpr const char* kKindNames[kKindCount] = {
      "read_error", "read_delay", "outage_read", "loader_stall", "corrupt_file",
  };
  for (int i = 0; i < kKindCount; ++i) {
    injected_[i] = metrics != nullptr
                       ? metrics->GetCounter("chaos.injected", {{"type", kKindNames[i]}})
                       : nullptr;
  }
}

void FaultInjector::Count(int which) {
  if (injected_[which] != nullptr) {
    injected_[which]->Add(1);
  }
}

Rng& FaultInjector::DeviceRng(uint32_t device) {
  while (device_rngs_.size() <= device) {
    const uint64_t ordinal = static_cast<uint64_t>(device_rngs_.size());
    device_rngs_.push_back(Rng(config_.seed ^ (ordinal + 1) * kGolden));
  }
  return device_rngs_[device];
}

bool FaultInjector::OutageActive(SimTime now) {
  if (config_.remote_outage_mean_gap <= Duration::Zero()) {
    return false;
  }
  // Renew the window process up to the current clock. Decisions depend only on
  // the seed and the query time, never on which device asks.
  while (now >= outage_end_) {
    outage_start_ = outage_end_ + Exponential(outage_rng_, config_.remote_outage_mean_gap);
    outage_end_ = outage_start_ + config_.remote_outage_duration;
  }
  return now >= outage_start_;
}

FaultInjector::ReadFault FaultInjector::OnDeviceRead(uint32_t device,
                                                     const std::string& device_name) {
  ReadFault fault;
  if (!config_.enabled || !armed_) {
    return fault;
  }
  if (device != 0 && OutageActive(sim_->now())) {
    Count(kOutageRead);
    fault.status = UnavailableError("injected outage on device " + device_name);
    return fault;
  }
  Rng& rng = DeviceRng(device);
  if (config_.read_error_rate > 0.0 && rng.NextBool(config_.read_error_rate)) {
    Count(kReadError);
    fault.status = IoError("injected read error on device " + device_name);
    return fault;
  }
  if (config_.read_delay_rate > 0.0 && rng.NextBool(config_.read_delay_rate)) {
    Count(kReadDelay);
    fault.extra_latency = config_.read_delay;
  }
  return fault;
}

bool FaultInjector::CorruptFile(uint32_t file_id) {
  if (!config_.enabled || config_.corrupt_file_rate <= 0.0) {
    return false;
  }
  // Hash-seeded throwaway stream: the decision is a pure function of
  // (seed, file_id), independent of registration or query order.
  Rng rng(config_.seed ^ 0xF11EULL ^ static_cast<uint64_t>(file_id) * kGolden);
  const bool corrupt = rng.NextBool(config_.corrupt_file_rate);
  if (corrupt) {
    Count(kCorruptFile);
  }
  return corrupt;
}

Duration FaultInjector::NextLoaderStall() {
  if (!config_.enabled || !armed_ || config_.loader_stall_rate <= 0.0) {
    return Duration::Zero();
  }
  if (!stall_rng_.NextBool(config_.loader_stall_rate)) {
    return Duration::Zero();
  }
  Count(kLoaderStall);
  return config_.loader_stall;
}

}  // namespace faasnap

#include "src/chaos/fault_injector.h"

#include <cmath>
#include <utility>

namespace faasnap {

namespace {

constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

// Exponential with the given mean, quantized to integer nanoseconds. Bounded
// below by 1ns so the outage renewal process always advances.
Duration Exponential(Rng& rng, Duration mean) {
  const double u = rng.NextDouble();
  const double ns = -static_cast<double>(mean.nanos()) * std::log(1.0 - u);
  return Duration::Nanos(ns < 1.0 ? 1 : static_cast<int64_t>(ns));
}

}  // namespace

void FaultInjector::InitWindow(WindowProcess* w) {
  w->start = SimTime::FromNanos(0);
  w->end = SimTime::FromNanos(0);
  if (w->mean_gap > Duration::Zero()) {
    w->start = SimTime::FromNanos(0) + Exponential(w->rng, w->mean_gap);
    w->end = w->start + w->duration;
  }
}

bool FaultInjector::WindowActive(WindowProcess* w, SimTime now, int count_kind) {
  if (w->mean_gap <= Duration::Zero()) {
    return false;
  }
  // Renew the window process up to the current clock. Decisions depend only on
  // the seed and the query time, never on which site asks.
  while (now >= w->end) {
    w->start = w->end + Exponential(w->rng, w->mean_gap);
    w->end = w->start + w->duration;
    w->counted = false;
  }
  const bool active = now >= w->start;
  if (active && count_kind >= 0 && !w->counted) {
    w->counted = true;
    Count(count_kind);
  }
  return active;
}

FaultInjector::FaultInjector(Simulation* sim, ChaosConfig config)
    : sim_(sim), config_(config), stall_rng_(config.seed ^ 0x57A11ULL * kGolden) {
  FAASNAP_CHECK(sim_ != nullptr);
  outage_.rng = Rng(config.seed ^ 0x0A7A6EULL * kGolden);
  outage_.mean_gap = config_.remote_outage_mean_gap;
  outage_.duration = config_.remote_outage_duration;
  InitWindow(&outage_);
  burst_.rng = Rng(config.seed ^ 0xB0057ULL * kGolden);
  burst_.mean_gap = config_.burst_mean_gap;
  burst_.duration = config_.burst_duration;
  InitWindow(&burst_);
  squeeze_.rng = Rng(config.seed ^ 0x50EE2ULL * kGolden);
  squeeze_.mean_gap = config_.squeeze_mean_gap;
  squeeze_.duration = config_.squeeze_duration;
  InitWindow(&squeeze_);
}

void FaultInjector::set_observability(MetricsRegistry* metrics) {
  static constexpr const char* kKindNames[kKindCount] = {
      "read_error",   "read_delay",   "outage_read", "loader_stall",
      "corrupt_file", "burst_window", "squeeze_window",
  };
  for (int i = 0; i < kKindCount; ++i) {
    injected_[i] = metrics != nullptr
                       ? metrics->GetCounter("chaos.injected", {{"type", kKindNames[i]}})
                       : nullptr;
  }
}

void FaultInjector::Count(int which) {
  if (injected_[which] != nullptr) {
    injected_[which]->Add(1);
  }
}

Rng& FaultInjector::DeviceRng(uint32_t device) {
  while (device_rngs_.size() <= device) {
    const uint64_t ordinal = static_cast<uint64_t>(device_rngs_.size());
    device_rngs_.push_back(Rng(config_.seed ^ (ordinal + 1) * kGolden));
  }
  return device_rngs_[device];
}

bool FaultInjector::OutageActive(SimTime now) {
  // Per-read counting (kOutageRead) happens at the call site, not per window.
  return WindowActive(&outage_, now, /*count_kind=*/-1);
}

double FaultInjector::ArrivalMultiplier(SimTime now) {
  if (!config_.enabled || config_.burst_arrival_multiplier <= 0.0) {
    return 1.0;
  }
  return WindowActive(&burst_, now, kBurstWindow) ? config_.burst_arrival_multiplier : 1.0;
}

double FaultInjector::MemoryBudgetFraction(SimTime now) {
  if (!config_.enabled || config_.squeeze_budget_fraction <= 0.0) {
    return 1.0;
  }
  return WindowActive(&squeeze_, now, kSqueezeWindow) ? config_.squeeze_budget_fraction : 1.0;
}

FaultInjector::ReadFault FaultInjector::OnDeviceRead(uint32_t device,
                                                     const std::string& device_name) {
  ReadFault fault;
  if (!config_.enabled || !armed_) {
    return fault;
  }
  if (device != 0 && OutageActive(sim_->now())) {
    Count(kOutageRead);
    fault.status = UnavailableError("injected outage on device " + device_name);
    return fault;
  }
  Rng& rng = DeviceRng(device);
  if (config_.read_error_rate > 0.0 && rng.NextBool(config_.read_error_rate)) {
    Count(kReadError);
    fault.status = IoError("injected read error on device " + device_name);
    return fault;
  }
  if (config_.read_delay_rate > 0.0 && rng.NextBool(config_.read_delay_rate)) {
    Count(kReadDelay);
    fault.extra_latency = config_.read_delay;
  }
  return fault;
}

bool FaultInjector::CorruptFile(uint32_t file_id) {
  if (!config_.enabled || config_.corrupt_file_rate <= 0.0) {
    return false;
  }
  // Hash-seeded throwaway stream: the decision is a pure function of
  // (seed, file_id), independent of registration or query order.
  Rng rng(config_.seed ^ 0xF11EULL ^ static_cast<uint64_t>(file_id) * kGolden);
  const bool corrupt = rng.NextBool(config_.corrupt_file_rate);
  if (corrupt) {
    Count(kCorruptFile);
  }
  return corrupt;
}

Duration FaultInjector::NextLoaderStall() {
  if (!config_.enabled || !armed_ || config_.loader_stall_rate <= 0.0) {
    return Duration::Zero();
  }
  if (!stall_rng_.NextBool(config_.loader_stall_rate)) {
    return Duration::Zero();
  }
  Count(kLoaderStall);
  return config_.loader_stall;
}

}  // namespace faasnap

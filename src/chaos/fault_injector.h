// Deterministic fault injection for the restore pipeline.
//
// A FaultInjector is a seeded source of failures: device read errors and latency
// spikes, remote-device outage windows, loader-thread stalls, and corrupt
// snapshot files. Every decision is drawn from SplitMix64 streams derived from a
// single seed, so the same seed yields the same fault schedule and bit-identical
// reports — chaos runs are as reproducible as fault-free ones.
//
// Each injection site holds a FaultInjector* that is null when chaos is off; the
// disabled cost is one branch per site, the same discipline as the span tracer.
// Per-device decisions come from per-device forked streams (seeded by device
// ordinal) and per-file corruption from a hash-seeded throwaway stream, so
// decisions do not depend on the order in which sites consult the injector.

#ifndef FAASNAP_SRC_CHAOS_FAULT_INJECTOR_H_
#define FAASNAP_SRC_CHAOS_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/obs/metrics_registry.h"
#include "src/sim/simulation.h"

namespace faasnap {

struct ChaosConfig {
  bool enabled = false;
  uint64_t seed = 0xC4A05;

  // Per-read probability that a device read fails with IO_ERROR.
  double read_error_rate = 0.0;
  // Per-read probability of an injected latency spike, and its size.
  double read_delay_rate = 0.0;
  Duration read_delay = Duration::Millis(2);

  // Per-file probability (decided once per file, at registration) that a
  // snapshot file is corrupt: its checksum validation fails at load.
  double corrupt_file_rate = 0.0;

  // Per-chunk probability that the prefetch loader thread stalls before
  // issuing the chunk, and the stall length.
  double loader_stall_rate = 0.0;
  Duration loader_stall = Duration::Millis(1);

  // Remote-device outage process: outage windows of `remote_outage_duration`
  // recur with exponentially distributed gaps of mean `remote_outage_mean_gap`.
  // Zero mean gap disables outages. Reads on non-local devices inside a window
  // fail immediately with UNAVAILABLE.
  Duration remote_outage_mean_gap = Duration::Zero();
  Duration remote_outage_duration = Duration::Millis(5);

  // When true (default), injection is disarmed while the platform records a
  // snapshot: the fault model targets the restore path, not offline snapshot
  // preparation. File corruption is unaffected (it is decided per file id).
  bool spare_record_phase = true;
};

class FaultInjector {
 public:
  FaultInjector(Simulation* sim, ChaosConfig config);

  // Consulted by BlockDevice on every read when attached. `device` is the
  // router ordinal (0 = local). A non-OK status means the read fails after the
  // device's fixed per-request latency; extra_latency delays an otherwise
  // successful completion.
  struct ReadFault {
    Status status;
    Duration extra_latency;
  };
  ReadFault OnDeviceRead(uint32_t device, const std::string& device_name);

  // Decided once per file id, independent of query order. Consulted by
  // SnapshotStore at registration.
  bool CorruptFile(uint32_t file_id);

  // Stall length to insert before the loader issues its next chunk
  // (Duration::Zero() = no stall).
  Duration NextLoaderStall();

  // Disarms/rearms read-error, delay, outage, and stall injection (used to
  // spare the record phase). Corruption decisions are unaffected.
  void set_armed(bool armed) { armed_ = armed; }
  bool armed() const { return armed_; }

  const ChaosConfig& config() const { return config_; }

  // Registers chaos.injected{type=...} counters. Null detaches.
  void set_observability(MetricsRegistry* metrics);

 private:
  Rng& DeviceRng(uint32_t device);
  bool OutageActive(SimTime now);
  void Count(int which);

  Simulation* sim_;
  ChaosConfig config_;
  std::vector<Rng> device_rngs_;  // indexed by device ordinal, grown on demand
  Rng stall_rng_;
  Rng outage_rng_;

  // Current/next outage window [start, end); renewed lazily as the clock passes.
  SimTime outage_start_;
  SimTime outage_end_;

  bool armed_ = true;

  enum InjectedKind {
    kReadError = 0,
    kReadDelay,
    kOutageRead,
    kLoaderStall,
    kCorruptFile,
    kKindCount,
  };
  Counter* injected_[kKindCount] = {};
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_CHAOS_FAULT_INJECTOR_H_

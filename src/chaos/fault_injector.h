// Deterministic fault injection for the restore pipeline.
//
// A FaultInjector is a seeded source of failures: device read errors and latency
// spikes, remote-device outage windows, loader-thread stalls, and corrupt
// snapshot files. Every decision is drawn from SplitMix64 streams derived from a
// single seed, so the same seed yields the same fault schedule and bit-identical
// reports — chaos runs are as reproducible as fault-free ones.
//
// Each injection site holds a FaultInjector* that is null when chaos is off; the
// disabled cost is one branch per site, the same discipline as the span tracer.
// Per-device decisions come from per-device forked streams (seeded by device
// ordinal) and per-file corruption from a hash-seeded throwaway stream, so
// decisions do not depend on the order in which sites consult the injector.

#ifndef FAASNAP_SRC_CHAOS_FAULT_INJECTOR_H_
#define FAASNAP_SRC_CHAOS_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/obs/metrics_registry.h"
#include "src/sim/simulation.h"

namespace faasnap {

struct ChaosConfig {
  bool enabled = false;
  uint64_t seed = 0xC4A05;

  // Per-read probability that a device read fails with IO_ERROR.
  double read_error_rate = 0.0;
  // Per-read probability of an injected latency spike, and its size.
  double read_delay_rate = 0.0;
  Duration read_delay = Duration::Millis(2);

  // Per-file probability (decided once per file, at registration) that a
  // snapshot file is corrupt: its checksum validation fails at load.
  double corrupt_file_rate = 0.0;

  // Per-chunk probability that the prefetch loader thread stalls before
  // issuing the chunk, and the stall length.
  double loader_stall_rate = 0.0;
  Duration loader_stall = Duration::Millis(1);

  // Remote-device outage process: outage windows of `remote_outage_duration`
  // recur with exponentially distributed gaps of mean `remote_outage_mean_gap`.
  // Zero mean gap disables outages. Reads on non-local devices inside a window
  // fail immediately with UNAVAILABLE.
  Duration remote_outage_mean_gap = Duration::Zero();
  Duration remote_outage_duration = Duration::Millis(5);

  // Overload windows for open-loop serving. Burst windows multiply the
  // offered arrival rate — inter-arrival gaps divide by
  // `burst_arrival_multiplier` while a window is active — and recur with
  // exponentially distributed gaps of mean `burst_mean_gap` (zero disables).
  Duration burst_mean_gap = Duration::Zero();
  Duration burst_duration = Duration::Millis(50);
  double burst_arrival_multiplier = 4.0;
  // Memory-squeeze windows shrink the admission controller's memory budget to
  // `squeeze_budget_fraction` of its configured value, recurring likewise.
  Duration squeeze_mean_gap = Duration::Zero();
  Duration squeeze_duration = Duration::Millis(50);
  double squeeze_budget_fraction = 0.5;

  // When true (default), injection is disarmed while the platform records a
  // snapshot: the fault model targets the restore path, not offline snapshot
  // preparation. File corruption is unaffected (it is decided per file id).
  bool spare_record_phase = true;
};

class FaultInjector {
 public:
  FaultInjector(Simulation* sim, ChaosConfig config);

  // Consulted by BlockDevice on every read when attached. `device` is the
  // router ordinal (0 = local). A non-OK status means the read fails after the
  // device's fixed per-request latency; extra_latency delays an otherwise
  // successful completion.
  struct ReadFault {
    Status status;
    Duration extra_latency;
  };
  ReadFault OnDeviceRead(uint32_t device, const std::string& device_name);

  // Decided once per file id, independent of query order. Consulted by
  // SnapshotStore at registration.
  bool CorruptFile(uint32_t file_id);

  // Stall length to insert before the loader issues its next chunk
  // (Duration::Zero() = no stall).
  Duration NextLoaderStall();

  // Open-loop arrival-gap divisor at `now`: `burst_arrival_multiplier` inside
  // a burst window, 1.0 outside (or with bursts disabled). Queries must be
  // made at non-decreasing times (the window process renews lazily).
  double ArrivalMultiplier(SimTime now);

  // Fraction of the admission memory budget available at `now`:
  // `squeeze_budget_fraction` inside a squeeze window, 1.0 outside.
  double MemoryBudgetFraction(SimTime now);

  // Disarms/rearms read-error, delay, outage, and stall injection (used to
  // spare the record phase). Corruption decisions are unaffected.
  void set_armed(bool armed) { armed_ = armed; }
  bool armed() const { return armed_; }

  const ChaosConfig& config() const { return config_; }

  // Registers chaos.injected{type=...} counters. Null detaches.
  void set_observability(MetricsRegistry* metrics);

 private:
  // A recurring window process: windows of fixed `duration` recur with
  // exponentially distributed gaps of mean `mean_gap`, renewed lazily as the
  // clock passes (decisions depend only on the seed and the query time).
  struct WindowProcess {
    Rng rng{0};
    Duration mean_gap;
    Duration duration;
    SimTime start;
    SimTime end;
    bool counted = false;  // current window already counted in chaos.injected
  };
  // Seeds the first window when the process is enabled (mean_gap > 0).
  static void InitWindow(WindowProcess* w);
  // True when `now` falls inside a window; `count_kind` >= 0 counts each
  // window once, on its first active query.
  bool WindowActive(WindowProcess* w, SimTime now, int count_kind);

  Rng& DeviceRng(uint32_t device);
  bool OutageActive(SimTime now);
  void Count(int which);

  Simulation* sim_;
  ChaosConfig config_;
  std::vector<Rng> device_rngs_;  // indexed by device ordinal, grown on demand
  Rng stall_rng_;

  WindowProcess outage_;
  WindowProcess burst_;
  WindowProcess squeeze_;

  bool armed_ = true;

  enum InjectedKind {
    kReadError = 0,
    kReadDelay,
    kOutageRead,
    kLoaderStall,
    kCorruptFile,
    kBurstWindow,
    kSqueezeWindow,
    kKindCount,
  };
  Counter* injected_[kKindCount] = {};
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_CHAOS_FAULT_INJECTOR_H_

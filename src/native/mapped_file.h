// RAII helpers for real files and memory mappings (the native engine).
//
// The native engine exercises FaaSnap's actual host-side mechanisms — mmap with
// MAP_FIXED overlays, mincore scans, loading-set files — against the real kernel.
// KVM is not required: the "guest" is a thread touching the mapped region; the
// host-side paging path (the paper's subject) is identical.

#ifndef FAASNAP_SRC_NATIVE_MAPPED_FILE_H_
#define FAASNAP_SRC_NATIVE_MAPPED_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/page_range.h"
#include "src/common/status.h"

namespace faasnap {

// An owned file descriptor with page-granular IO helpers.
class NativeFile {
 public:
  NativeFile() = default;
  NativeFile(NativeFile&& other) noexcept;
  NativeFile& operator=(NativeFile&& other) noexcept;
  NativeFile(const NativeFile&) = delete;
  NativeFile& operator=(const NativeFile&) = delete;
  ~NativeFile();

  // Creates (truncating) a file of `pages` pages. The file is unlinked on close
  // if `unlink_on_close`.
  static Result<NativeFile> Create(const std::string& path, uint64_t pages,
                                   bool unlink_on_close = true);
  static Result<NativeFile> Open(const std::string& path);

  // Writes one page's worth of bytes at page `page`.
  Status WritePage(PageIndex page, const void* data);
  Status ReadPage(PageIndex page, void* out) const;

  // Contiguous multi-page IO: one pwrite/pread per call instead of one per
  // page. `data`/`out` must hold `count * kPageSize` bytes.
  Status WritePages(PageIndex first, uint64_t count, const void* data);
  Status ReadPages(PageIndex first, uint64_t count, void* out) const;

  // posix_fadvise(DONTNEED): best-effort page cache eviction for this file.
  void DropCache() const;

  int fd() const { return fd_; }
  uint64_t pages() const { return pages_; }
  const std::string& path() const { return path_; }
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  uint64_t pages_ = 0;
  std::string path_;
  bool unlink_on_close_ = false;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_NATIVE_MAPPED_FILE_H_

#include "src/native/region_mapper.h"

#include <sys/mman.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "src/common/units.h"

namespace faasnap {

NativeRegionMapper::~NativeRegionMapper() {
  if (base_ != nullptr) {
    ::munmap(base_, PagesToBytes(pages_));
  }
}

Status NativeRegionMapper::ReserveAnonymous(uint64_t pages) {
  FAASNAP_CHECK(base_ == nullptr);
  void* addr = ::mmap(nullptr, PagesToBytes(pages), PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (addr == MAP_FAILED) {
    return IoError(std::string("mmap anonymous base: ") + std::strerror(errno));
  }
  base_ = static_cast<uint8_t*>(addr);
  pages_ = pages;
  ++mmap_calls_;
  return OkStatus();
}

Status NativeRegionMapper::MapFileRegion(const PageRange& guest, const NativeFile& file,
                                         PageIndex file_start) {
  FAASNAP_CHECK(base_ != nullptr);
  FAASNAP_CHECK(guest.end() <= pages_);
  void* target = base_ + PagesToBytes(guest.first);
  void* addr = ::mmap(target, PagesToBytes(guest.count), PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_FIXED, file.fd(),
                      static_cast<off_t>(PagesToBytes(file_start)));
  if (addr == MAP_FAILED) {
    return IoError(std::string("mmap MAP_FIXED file region: ") + std::strerror(errno));
  }
  ++mmap_calls_;
  return OkStatus();
}

Status NativeRegionMapper::MapAnonymousRegion(const PageRange& guest) {
  FAASNAP_CHECK(base_ != nullptr);
  FAASNAP_CHECK(guest.end() <= pages_);
  void* target = base_ + PagesToBytes(guest.first);
  void* addr = ::mmap(target, PagesToBytes(guest.count), PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED | MAP_NORESERVE, -1, 0);
  if (addr == MAP_FAILED) {
    return IoError(std::string("mmap MAP_FIXED anonymous region: ") + std::strerror(errno));
  }
  ++mmap_calls_;
  return OkStatus();
}

void* NativeRegionMapper::PageAddress(PageIndex page) const {
  FAASNAP_CHECK(base_ != nullptr && page < pages_);
  return base_ + PagesToBytes(page);
}

Result<PageRangeSet> NativeRegionMapper::ResidentPages() const {
  FAASNAP_CHECK(base_ != nullptr);
  std::vector<unsigned char> vec(pages_);
  if (::mincore(base_, PagesToBytes(pages_), vec.data()) != 0) {
    return IoError(std::string("mincore: ") + std::strerror(errno));
  }
  PageRangeSet resident;
  PageIndex run_start = 0;
  uint64_t run_len = 0;
  for (PageIndex p = 0; p < pages_; ++p) {
    if ((vec[p] & 1u) != 0) {
      if (run_len == 0) {
        run_start = p;
      }
      ++run_len;
    } else if (run_len > 0) {
      resident.Add(run_start, run_len);
      run_len = 0;
    }
  }
  if (run_len > 0) {
    resident.Add(run_start, run_len);
  }
  return resident;
}

}  // namespace faasnap

#include "src/native/mapped_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/units.h"

namespace faasnap {

namespace {
std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}
}  // namespace

NativeFile::NativeFile(NativeFile&& other) noexcept
    : fd_(other.fd_),
      pages_(other.pages_),
      path_(std::move(other.path_)),
      unlink_on_close_(other.unlink_on_close_) {
  other.fd_ = -1;
  other.unlink_on_close_ = false;
}

NativeFile& NativeFile::operator=(NativeFile&& other) noexcept {
  if (this != &other) {
    this->~NativeFile();
    new (this) NativeFile(std::move(other));
  }
  return *this;
}

NativeFile::~NativeFile() {
  if (fd_ >= 0) {
    ::close(fd_);
    if (unlink_on_close_) {
      ::unlink(path_.c_str());
    }
  }
}

Result<NativeFile> NativeFile::Create(const std::string& path, uint64_t pages,
                                      bool unlink_on_close) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) {
    return IoError(ErrnoMessage("open " + path));
  }
  if (::ftruncate(fd, static_cast<off_t>(PagesToBytes(pages))) != 0) {
    ::close(fd);
    return IoError(ErrnoMessage("ftruncate " + path));
  }
  NativeFile file;
  file.fd_ = fd;
  file.pages_ = pages;
  file.path_ = path;
  file.unlink_on_close_ = unlink_on_close;
  return file;
}

Result<NativeFile> NativeFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return IoError(ErrnoMessage("open " + path));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return IoError(ErrnoMessage("lseek " + path));
  }
  NativeFile file;
  file.fd_ = fd;
  file.pages_ = BytesToPages(static_cast<uint64_t>(size));
  file.path_ = path;
  return file;
}

Status NativeFile::WritePage(PageIndex page, const void* data) {
  const ssize_t written = ::pwrite(fd_, data, kPageSize,
                                   static_cast<off_t>(PagesToBytes(page)));
  if (written != static_cast<ssize_t>(kPageSize)) {
    return IoError(ErrnoMessage("pwrite " + path_));
  }
  return OkStatus();
}

Status NativeFile::ReadPage(PageIndex page, void* out) const {
  const ssize_t got = ::pread(fd_, out, kPageSize, static_cast<off_t>(PagesToBytes(page)));
  if (got != static_cast<ssize_t>(kPageSize)) {
    return IoError(ErrnoMessage("pread " + path_));
  }
  return OkStatus();
}

Status NativeFile::WritePages(PageIndex first, uint64_t count, const void* data) {
  const char* p = static_cast<const char*>(data);
  uint64_t remaining = PagesToBytes(count);
  off_t offset = static_cast<off_t>(PagesToBytes(first));
  while (remaining > 0) {
    const ssize_t written = ::pwrite(fd_, p, remaining, offset);
    if (written <= 0) {
      return IoError(ErrnoMessage("pwrite " + path_));
    }
    p += written;
    offset += written;
    remaining -= static_cast<uint64_t>(written);
  }
  return OkStatus();
}

Status NativeFile::ReadPages(PageIndex first, uint64_t count, void* out) const {
  char* p = static_cast<char*>(out);
  uint64_t remaining = PagesToBytes(count);
  off_t offset = static_cast<off_t>(PagesToBytes(first));
  while (remaining > 0) {
    const ssize_t got = ::pread(fd_, p, remaining, offset);
    if (got <= 0) {
      return IoError(ErrnoMessage("pread " + path_));
    }
    p += got;
    offset += got;
    remaining -= static_cast<uint64_t>(got);
  }
  return OkStatus();
}

void NativeFile::DropCache() const {
  // Dirty pages must hit the device before DONTNEED can evict them. On tmpfs
  // neither step evicts anything — callers must treat this as best effort.
  ::fsync(fd_);
  ::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
}

}  // namespace faasnap

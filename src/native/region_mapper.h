// NativeRegionMapper: FaaSnap's hierarchical overlapping mmap against the real
// kernel (paper Figure 4 / section 4.8).
//
// A base anonymous reservation covers the whole "guest" space; non-zero memory
// file regions and loading-set-file regions are MAP_FIXED'd over it, later layers
// overriding earlier ones exactly as the Firecracker VMM modification does. The
// mapped area can then be handed to a guest — here, a toucher thread.

#ifndef FAASNAP_SRC_NATIVE_REGION_MAPPER_H_
#define FAASNAP_SRC_NATIVE_REGION_MAPPER_H_

#include <cstdint>

#include "src/common/page_range.h"
#include "src/common/status.h"
#include "src/native/mapped_file.h"

namespace faasnap {

class NativeRegionMapper {
 public:
  NativeRegionMapper() = default;
  NativeRegionMapper(const NativeRegionMapper&) = delete;
  NativeRegionMapper& operator=(const NativeRegionMapper&) = delete;
  ~NativeRegionMapper();

  // Reserves `pages` of anonymous memory (the bottom layer). Must be called once,
  // first.
  Status ReserveAnonymous(uint64_t pages);

  // MAP_FIXED overlay: maps `guest` pages to `file` starting at file page
  // `file_start`, shared so page-cache behavior matches the VMM (MAP_PRIVATE
  // would CoW; Firecracker uses private mappings, but shared keeps this demo's
  // content checks simple while exercising the same fault path).
  Status MapFileRegion(const PageRange& guest, const NativeFile& file, PageIndex file_start);

  // Re-punches an anonymous MAP_FIXED hole over `guest` (zero regions).
  Status MapAnonymousRegion(const PageRange& guest);

  // Pointer to guest page `page` within the mapping.
  void* PageAddress(PageIndex page) const;
  uint8_t* base() const { return base_; }
  uint64_t pages() const { return pages_; }
  uint64_t mmap_call_count() const { return mmap_calls_; }

  // mincore(2) over the whole mapping: which guest pages are resident.
  Result<PageRangeSet> ResidentPages() const;

 private:
  uint8_t* base_ = nullptr;
  uint64_t pages_ = 0;
  uint64_t mmap_calls_ = 0;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_NATIVE_REGION_MAPPER_H_

// NativeSnapshotSession: FaaSnap's record/restore cycle against real files and
// the real kernel, end to end:
//
//   1. a "memory file" is created with stamped non-zero pages (stamp = page
//      index, so mapping mistakes are detectable) and true zero pages;
//   2. the record pass maps the whole file, touches pages in a given order, and
//      builds working set groups from periodic mincore scans (host page
//      recording, section 4.4-5);
//   3. the loading set is computed with the shared core builder and written to a
//      compact on-disk loading set file plus a serialized manifest (section 4.7);
//   4. the restore pass builds the hierarchical per-region mapping — anonymous
//      base, non-zero regions to the memory file, loading regions to the loading
//      set file — while a loader thread prefetches the loading set file
//      sequentially (sections 4.2, 4.8);
//   5. every touched page's stamp is verified through the restored mapping.
//
// KVM is not required; the "guest" is the calling thread. The host-side paging
// behavior being exercised is the same one the VMM relies on.

#ifndef FAASNAP_SRC_NATIVE_NATIVE_SNAPSHOT_H_
#define FAASNAP_SRC_NATIVE_NATIVE_SNAPSHOT_H_

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/page_range.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/native/mapped_file.h"
#include "src/native/region_mapper.h"
#include "src/obs/span_tracer.h"
#include "src/snapshot/snapshot_files.h"

namespace faasnap {

// Stamp written into the first 8 bytes of every non-zero page.
uint64_t NativePageStamp(PageIndex page);

class NativeSnapshotSession {
 public:
  struct Config {
    std::string directory = "/tmp";
    PageCount guest_pages = PageCount::FromPages(4096);  // 16 MiB default: fast, still page-cache real
  };

  // Creates the memory file with `nonzero` stamped pages (the rest are holes).
  static Result<std::unique_ptr<NativeSnapshotSession>> Create(const Config& config,
                                                               const PageRangeSet& nonzero);

  // Record pass: touches `accesses` through a whole-file mapping; a mincore scan
  // after every `group_size` touches forms the next working set group.
  Result<WorkingSetGroups> RecordWorkingSet(const std::vector<PageIndex>& accesses,
                                            uint64_t group_size);

  // Builds the loading set (shared core builder) and writes the compact loading
  // set file and its manifest blob to disk.
  Result<LoadingSetFile> BuildAndWriteLoadingSet(const WorkingSetGroups& groups,
                                                 PageCount merge_gap_pages);

  // Restore pass: hierarchical per-region mapping per Figure 4. The returned
  // mapper owns the guest mapping.
  Result<std::unique_ptr<NativeRegionMapper>> RestorePerRegion(const LoadingSetFile& loading);

  // Starts a loader thread that sequentially preads the loading set file to
  // populate the page cache. JoinLoader waits for it and returns the loader's
  // terminal status: OK when the whole loading set was read, the first pread
  // error otherwise (the restore is then running without its prefetched
  // pages — degraded, not broken, but the caller must know).
  void StartLoader() FAASNAP_EXCLUDES(loader_mu_);
  [[nodiscard]] Status JoinLoader() FAASNAP_EXCLUDES(loader_mu_);

  // Reads the stamp of guest `page` through `mapper` (faulting as needed).
  static uint64_t ReadStampThroughMapping(const NativeRegionMapper& mapper, PageIndex page);

  // Drops the page cache for the snapshot files (fadvise; best effort).
  void DropCaches();

  // Attaches span tracing on the native lane; phase timestamps come from the
  // host's steady clock (nanoseconds since attach). The SpanTracer is
  // thread-safe, so the loader thread records its own span.
  void set_observability(SpanTracer* spans);

  const PageRangeSet& nonzero() const { return nonzero_; }
  PageCount guest_pages() const { return config_.guest_pages; }
  const std::string& manifest_path() const { return manifest_path_; }

 private:
  NativeSnapshotSession() = default;

  // Wall time as a SimTime on the attach-relative steady clock.
  SimTime ObsNow() const;

  SpanTracer* spans_ = nullptr;
  std::chrono::steady_clock::time_point obs_base_;

  Config config_;
  PageRangeSet nonzero_;
  NativeFile memory_file_;
  NativeFile loading_file_;
  std::string manifest_path_;

  // Loader-thread state shared between the loader and the joining thread.
  std::thread loader_;
  Mutex loader_mu_;
  Status loader_status_ FAASNAP_GUARDED_BY(loader_mu_);
  uint64_t loader_pages_read_ FAASNAP_GUARDED_BY(loader_mu_) = 0;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_NATIVE_NATIVE_SNAPSHOT_H_

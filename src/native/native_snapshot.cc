#include "src/native/native_snapshot.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/common/units.h"
#include "src/core/loading_set_builder.h"
#include "src/obs/observability.h"
#include "src/snapshot/serialization.h"

namespace faasnap {

uint64_t NativePageStamp(PageIndex page) { return page * 0x9e3779b97f4a7c15ULL ^ 0xFAA5AA9ull; }

Result<std::unique_ptr<NativeSnapshotSession>> NativeSnapshotSession::Create(
    const Config& config, const PageRangeSet& nonzero) {
  auto session = std::unique_ptr<NativeSnapshotSession>(new NativeSnapshotSession());
  session->config_ = config;
  session->nonzero_ = nonzero;

  char name[256];
  std::snprintf(name, sizeof(name), "%s/faasnap-native-%d.mem", config.directory.c_str(),
                ::getpid());
  ASSIGN_OR_RETURN(session->memory_file_,
                   NativeFile::Create(name, config.guest_pages.value()));

  // Stamp the non-zero pages; untouched ranges stay file holes (real zeros).
  // Pages are written in contiguous runs of up to kIoBatchPages per pwrite
  // rather than one syscall per page.
  constexpr uint64_t kIoBatchPages = 64;
  std::vector<uint8_t> buf(kIoBatchPages * kPageSize, 0);
  for (const PageRange& r : nonzero.ranges()) {
    if (r.end() > config.guest_pages.value()) {
      return InvalidArgumentError("nonzero range outside guest");
    }
    for (PageIndex p = r.first; p < r.end(); p += kIoBatchPages) {
      const uint64_t n = std::min<uint64_t>(kIoBatchPages, r.end() - p);
      for (uint64_t i = 0; i < n; ++i) {
        const uint64_t stamp = NativePageStamp(p + i);
        std::memcpy(buf.data() + i * kPageSize, &stamp, sizeof(stamp));
      }
      RETURN_IF_ERROR(session->memory_file_.WritePages(p, n, buf.data()));
    }
  }
  return session;
}

void NativeSnapshotSession::set_observability(SpanTracer* spans) {
  spans_ = spans;
  obs_base_ = std::chrono::steady_clock::now();
}

SimTime NativeSnapshotSession::ObsNow() const {
  return SimTime::FromNanos(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - obs_base_)
                                .count());
}

Result<WorkingSetGroups> NativeSnapshotSession::RecordWorkingSet(
    const std::vector<PageIndex>& accesses, uint64_t group_size) {
  FAASNAP_CHECK(group_size > 0);
  const SpanId span = spans_ != nullptr
                          ? spans_->Begin(ObsNow(), ObsLane::kNative, obsname::kRecord,
                                          accesses.size(), group_size)
                          : kNoSpan;
  NativeRegionMapper mapper;
  RETURN_IF_ERROR(mapper.ReserveAnonymous(config_.guest_pages.value()));
  RETURN_IF_ERROR(
      mapper.MapFileRegion(PageRange{0, config_.guest_pages.value()}, memory_file_, 0));

  WorkingSetGroups groups;
  PageRangeSet recorded;
  uint64_t since_scan = 0;
  volatile uint64_t sink = 0;
  auto scan = [&]() -> Status {
    ASSIGN_OR_RETURN(PageRangeSet resident, mapper.ResidentPages());
    resident.SubtractInPlace(recorded);
    if (!resident.empty()) {
      recorded.UnionInPlace(resident);
      groups.groups.push_back(std::move(resident));
    }
    return OkStatus();
  };
  for (PageIndex page : accesses) {
    sink = sink + *static_cast<uint64_t*>(mapper.PageAddress(page));
    if (++since_scan >= group_size) {
      since_scan = 0;
      RETURN_IF_ERROR(scan());
    }
  }
  RETURN_IF_ERROR(scan());
  if (spans_ != nullptr) {
    spans_->End(span, ObsNow(), groups.groups.size());
  }
  return groups;
}

Result<LoadingSetFile> NativeSnapshotSession::BuildAndWriteLoadingSet(
    const WorkingSetGroups& groups, PageCount merge_gap_pages) {
  const SpanId span =
      spans_ != nullptr
          ? spans_->Begin(ObsNow(), ObsLane::kNative, "native.build_lset", groups.groups.size())
          : kNoSpan;
  MemoryFile meta;
  meta.total_pages = config_.guest_pages;
  meta.nonzero = nonzero_;
  LoadingSetFile loading =
      BuildLoadingSet(groups, meta, LoadingSetConfig{.merge_gap_pages = merge_gap_pages});

  char name[256];
  std::snprintf(name, sizeof(name), "%s/faasnap-native-%d.lset", config_.directory.c_str(),
                ::getpid());
  ASSIGN_OR_RETURN(loading_file_, NativeFile::Create(name, loading.total_pages.value()));

  // Copy loading-set pages from the memory file, packed by (group, address).
  // Each region is contiguous in both files, so copy it in 64-page chunks
  // instead of a read/write syscall pair per page.
  constexpr uint64_t kIoBatchPages = 64;
  std::vector<uint8_t> buf(kIoBatchPages * kPageSize);
  for (const LoadingRegion& region : loading.regions) {
    for (uint64_t i = 0; i < region.guest.count; i += kIoBatchPages) {
      const uint64_t n = std::min<uint64_t>(kIoBatchPages, region.guest.count - i);
      RETURN_IF_ERROR(memory_file_.ReadPages(region.guest.first + i, n, buf.data()));
      RETURN_IF_ERROR(loading_file_.WritePages(region.file_start + i, n, buf.data()));
    }
  }

  // Persist the manifest next to the payload.
  manifest_path_ = std::string(name) + ".manifest";
  const std::vector<uint8_t> blob = EncodeLoadingSetManifest(loading);
  std::ofstream manifest(manifest_path_, std::ios::binary | std::ios::trunc);
  manifest.write(reinterpret_cast<const char*>(blob.data()),
                 static_cast<std::streamsize>(blob.size()));
  if (!manifest.good()) {
    return IoError("writing manifest " + manifest_path_);
  }
  if (spans_ != nullptr) {
    spans_->End(span, ObsNow(), loading.total_pages.value());
  }
  return loading;
}

Result<std::unique_ptr<NativeRegionMapper>> NativeSnapshotSession::RestorePerRegion(
    const LoadingSetFile& loading) {
  const SpanId span =
      spans_ != nullptr
          ? spans_->Begin(ObsNow(), ObsLane::kNative, obsname::kSetup, loading.regions.size())
          : kNoSpan;
  auto mapper = std::make_unique<NativeRegionMapper>();
  RETURN_IF_ERROR(mapper->ReserveAnonymous(config_.guest_pages.value()));
  uint64_t mmap_calls = 1;
  for (const PageRange& r : nonzero_.ranges()) {
    RETURN_IF_ERROR(mapper->MapFileRegion(r, memory_file_, r.first));
    ++mmap_calls;
  }
  for (const LoadingRegion& region : loading.regions) {
    RETURN_IF_ERROR(mapper->MapFileRegion(region.guest, loading_file_, region.file_start));
    ++mmap_calls;
  }
  if (spans_ != nullptr) {
    spans_->End(span, ObsNow(), mmap_calls);
  }
  return mapper;
}

void NativeSnapshotSession::StartLoader() {
  FAASNAP_CHECK(!loader_.joinable());
  {
    MutexLock lock(loader_mu_);
    loader_status_ = OkStatus();
    loader_pages_read_ = 0;
  }
  loader_ = std::thread([this] {
    // Sequential pread of the whole loading set file: populates the page cache in
    // (group, address) order, exactly like the daemon loader. The SpanTracer is
    // thread-safe, so this thread records its own span on the native lane.
    const SimTime begin = ObsNow();
    std::vector<uint8_t> buf(64 * kPageSize);
    const uint64_t total = loading_file_.pages();
    Status status = OkStatus();
    uint64_t read = 0;
    for (uint64_t p = 0; p < total && status.ok(); p += 64) {
      const uint64_t n = std::min<uint64_t>(64, total - p);
      status = loading_file_.ReadPages(p, n, buf.data());
      if (status.ok()) {
        read += n;
      }
    }
    {
      MutexLock lock(loader_mu_);
      loader_status_ = status;
      loader_pages_read_ = read;
    }
    if (spans_ != nullptr) {
      spans_->Complete(begin, ObsNow(), ObsLane::kNative, obsname::kLoader, total, read);
    }
  });
}

Status NativeSnapshotSession::JoinLoader() {
  if (!loader_.joinable()) {
    return OkStatus();
  }
  loader_.join();
  MutexLock lock(loader_mu_);
  return loader_status_;
}

uint64_t NativeSnapshotSession::ReadStampThroughMapping(const NativeRegionMapper& mapper,
                                                        PageIndex page) {
  return *static_cast<const uint64_t*>(mapper.PageAddress(page));
}

void NativeSnapshotSession::DropCaches() {
  memory_file_.DropCache();
  if (loading_file_.valid()) {
    loading_file_.DropCache();
  }
}

}  // namespace faasnap

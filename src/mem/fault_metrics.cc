#include "src/mem/fault_metrics.h"

namespace faasnap {

std::string_view FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kNoFault:
      return "no-fault";
    case FaultClass::kAnonymous:
      return "anonymous";
    case FaultClass::kMinor:
      return "minor";
    case FaultClass::kMajor:
      return "major";
    case FaultClass::kInFlightWait:
      return "inflight-wait";
    case FaultClass::kUffdPreinstalled:
      return "uffd-preinstalled";
    case FaultClass::kUffdHandled:
      return "uffd-handled";
    case FaultClass::kHugeInstall:
      return "huge-install";
    case FaultClass::kClassCount:
      break;
  }
  return "unknown";
}

int64_t FaultMetrics::total_faults() const {
  int64_t total = 0;
  for (int i = 1; i < static_cast<int>(FaultClass::kClassCount); ++i) {
    total += counts[i];
  }
  return total;
}

void FaultMetrics::RecordFault(FaultClass c, Duration handling, Duration extra_wait) {
  counts[static_cast<int>(c)]++;
  if (c == FaultClass::kNoFault) {
    return;
  }
  total_fault_time += handling;
  total_wait_time += handling + extra_wait;
  latency_histogram.Record(handling);
}

void FaultMetrics::Merge(const FaultMetrics& other) {
  for (int i = 0; i < static_cast<int>(FaultClass::kClassCount); ++i) {
    counts[i] += other.counts[i];
  }
  total_fault_time += other.total_fault_time;
  total_wait_time += other.total_wait_time;
  latency_histogram.Merge(other.latency_histogram);
  fault_disk_requests += other.fault_disk_requests;
  fault_disk_bytes += other.fault_disk_bytes;
  batch_installs += other.batch_installs;
  batch_installed_pages += other.batch_installed_pages;
  huge_installs += other.huge_installs;
  huge_installed_pages += other.huge_installed_pages;
  huge_splits += other.huge_splits;
  coalesced_pages += other.coalesced_pages;
}

}  // namespace faasnap

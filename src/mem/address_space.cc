#include "src/mem/address_space.h"

#include <algorithm>

namespace faasnap {

AddressSpace::AddressSpace(PageCount total_pages) : total_pages_(total_pages) {
  FAASNAP_CHECK(!total_pages.is_zero());
  install_.assign(total_pages.value(), static_cast<uint8_t>(PageInstallState::kNotPresent));
  regions_.emplace(0, PageBacking{BackingKind::kUnmapped, kInvalidFileId, 0});
}

void AddressSpace::Map(const MappingRequest& request) {
  FAASNAP_CHECK(!request.guest.empty());
  FAASNAP_CHECK(request.guest.end() <= limit());
  if (request.kind == BackingKind::kFile) {
    FAASNAP_CHECK(request.file != kInvalidFileId);
  }
  ++mmap_call_count_;

  const PageIndex lo = request.guest.first;
  const PageIndex hi = request.guest.end();

  // Preserve the backing that resumes at `hi` before erasing overlapped entries.
  const PageBacking at_hi = hi < limit() ? Resolve(hi) : PageBacking{};

  // Erase all run starts inside [lo, hi).
  auto it = regions_.lower_bound(lo);
  while (it != regions_.end() && it->first < hi) {
    it = regions_.erase(it);
  }

  // The run containing lo (starting before it) keeps its prefix; insert the new
  // region at lo.
  PageBacking incoming{request.kind, request.file, request.file_start};
  regions_[lo] = incoming;
  if (hi < limit()) {
    // Resume whatever was mapped at hi, with its file offset advanced correctly
    // (Resolve(hi) already returns the per-page backing, so store it as a run
    // starting exactly at hi).
    regions_[hi] = at_hi;
  }
}

PageBacking AddressSpace::Resolve(PageIndex page) const {
  FAASNAP_CHECK(page < limit());
  auto it = regions_.upper_bound(page);
  FAASNAP_CHECK(it != regions_.begin());
  --it;
  PageBacking backing = it->second;
  if (backing.kind == BackingKind::kFile) {
    backing.file_page += page - it->first;
  }
  return backing;
}

void AddressSpace::SetInstallState(PageIndex page, PageInstallState s) {
  FAASNAP_CHECK(page < limit());
  const auto old = static_cast<PageInstallState>(install_[page]);
  const bool was_resident = old != PageInstallState::kNotPresent;
  const bool now_resident = s != PageInstallState::kNotPresent;
  install_[page] = static_cast<uint8_t>(s);
  if (!was_resident && now_resident) {
    resident_pages_ += PageCount::FromPages(1);
  } else if (was_resident && !now_resident) {
    resident_pages_ -= PageCount::FromPages(1);
  }
}

void AddressSpace::SetInstallState(PageRange range, PageInstallState s) {
  FAASNAP_CHECK(range.end() <= limit());
  const bool now_resident = s != PageInstallState::kNotPresent;
  const uint8_t value = static_cast<uint8_t>(s);
  int64_t resident_delta = 0;
  for (PageIndex p = range.first; p < range.end(); ++p) {
    const bool was_resident =
        install_[p] != static_cast<uint8_t>(PageInstallState::kNotPresent);
    resident_delta += static_cast<int64_t>(now_resident) - static_cast<int64_t>(was_resident);
    install_[p] = value;
  }
  resident_pages_ = PageCount::FromPages(
      static_cast<uint64_t>(static_cast<int64_t>(resident_pages_.value()) + resident_delta));
}

bool AddressSpace::AllInState(PageRange range, PageInstallState s) const {
  FAASNAP_CHECK(range.end() <= limit());
  const uint8_t value = static_cast<uint8_t>(s);
  for (PageIndex p = range.first; p < range.end(); ++p) {
    if (install_[p] != value) {
      return false;
    }
  }
  return true;
}

PageRange AddressSpace::MappingRun(PageIndex page) const {
  FAASNAP_CHECK(page < limit());
  auto it = regions_.upper_bound(page);
  FAASNAP_CHECK(it != regions_.begin());
  const PageIndex end = it == regions_.end() ? limit() : it->first;
  --it;
  return PageRange{it->first, end - it->first};
}

void AddressSpace::ConfigureHugeRegions(PageCount region_pages) {
  FAASNAP_CHECK(!region_pages.is_zero());
  huge_region_pages_ = region_pages;
  huge_regions_.clear();
}

PageRange AddressSpace::HugeRegionOf(PageIndex page) const {
  FAASNAP_CHECK(page < limit());
  const uint64_t region = huge_region_pages_.value();
  const PageIndex start = page - page % region;
  const PageIndex end = std::min(start + region, limit());
  return PageRange{start, end - start};
}

void AddressSpace::MarkHugeEligible(PageIndex region_start) {
  FAASNAP_CHECK(region_start < limit());
  FAASNAP_CHECK(region_start % huge_region_pages_.value() == 0);
  huge_regions_[region_start] = HugeRegionState::kEligible;
}

HugeRegionState AddressSpace::huge_region_state(PageIndex page) const {
  FAASNAP_CHECK(page < limit());
  auto it = huge_regions_.find(page - page % huge_region_pages_.value());
  return it == huge_regions_.end() ? HugeRegionState::kNone : it->second;
}

void AddressSpace::SetHugeRegionState(PageIndex page, HugeRegionState s) {
  FAASNAP_CHECK(page < limit());
  huge_regions_[page - page % huge_region_pages_.value()] = s;
}

PageCount AddressSpace::resident_anonymous_pages() const {
  uint64_t count = 0;
  auto it = regions_.begin();
  while (it != regions_.end()) {
    auto next = std::next(it);
    const PageIndex run_end = next == regions_.end() ? limit() : next->first;
    if (it->second.kind == BackingKind::kAnonymous) {
      for (PageIndex p = it->first; p < run_end; ++p) {
        if (install_[p] != static_cast<uint8_t>(PageInstallState::kNotPresent)) {
          ++count;
        }
      }
    }
    it = next;
  }
  return PageCount::FromPages(count);
}

}  // namespace faasnap

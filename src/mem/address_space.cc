#include "src/mem/address_space.h"

namespace faasnap {

AddressSpace::AddressSpace(uint64_t total_pages) : total_pages_(total_pages) {
  FAASNAP_CHECK(total_pages > 0);
  install_.assign(total_pages, static_cast<uint8_t>(PageInstallState::kNotPresent));
  regions_.emplace(0, PageBacking{BackingKind::kUnmapped, kInvalidFileId, 0});
}

void AddressSpace::Map(const MappingRequest& request) {
  FAASNAP_CHECK(!request.guest.empty());
  FAASNAP_CHECK(request.guest.end() <= total_pages_);
  if (request.kind == BackingKind::kFile) {
    FAASNAP_CHECK(request.file != kInvalidFileId);
  }
  ++mmap_call_count_;

  const PageIndex lo = request.guest.first;
  const PageIndex hi = request.guest.end();

  // Preserve the backing that resumes at `hi` before erasing overlapped entries.
  const PageBacking at_hi = hi < total_pages_ ? Resolve(hi) : PageBacking{};

  // Erase all run starts inside [lo, hi).
  auto it = regions_.lower_bound(lo);
  while (it != regions_.end() && it->first < hi) {
    it = regions_.erase(it);
  }

  // The run containing lo (starting before it) keeps its prefix; insert the new
  // region at lo.
  PageBacking incoming{request.kind, request.file, request.file_start};
  regions_[lo] = incoming;
  if (hi < total_pages_) {
    // Resume whatever was mapped at hi, with its file offset advanced correctly
    // (Resolve(hi) already returns the per-page backing, so store it as a run
    // starting exactly at hi).
    regions_[hi] = at_hi;
  }
}

PageBacking AddressSpace::Resolve(PageIndex page) const {
  FAASNAP_CHECK(page < total_pages_);
  auto it = regions_.upper_bound(page);
  FAASNAP_CHECK(it != regions_.begin());
  --it;
  PageBacking backing = it->second;
  if (backing.kind == BackingKind::kFile) {
    backing.file_page += page - it->first;
  }
  return backing;
}

void AddressSpace::SetInstallState(PageIndex page, PageInstallState s) {
  FAASNAP_CHECK(page < total_pages_);
  const auto old = static_cast<PageInstallState>(install_[page]);
  const bool was_resident = old != PageInstallState::kNotPresent;
  const bool now_resident = s != PageInstallState::kNotPresent;
  install_[page] = static_cast<uint8_t>(s);
  if (!was_resident && now_resident) {
    ++resident_pages_;
  } else if (was_resident && !now_resident) {
    --resident_pages_;
  }
}

void AddressSpace::SetInstallState(PageRange range, PageInstallState s) {
  for (PageIndex p = range.first; p < range.end(); ++p) {
    SetInstallState(p, s);
  }
}

uint64_t AddressSpace::resident_anonymous_pages() const {
  uint64_t count = 0;
  auto it = regions_.begin();
  while (it != regions_.end()) {
    auto next = std::next(it);
    const PageIndex run_end = next == regions_.end() ? total_pages_ : next->first;
    if (it->second.kind == BackingKind::kAnonymous) {
      for (PageIndex p = it->first; p < run_end; ++p) {
        if (install_[p] != static_cast<uint8_t>(PageInstallState::kNotPresent)) {
          ++count;
        }
      }
    }
    it = next;
  }
  return count;
}

}  // namespace faasnap

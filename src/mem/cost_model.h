// Host memory-management cost constants.
//
// Calibrated from the paper's own microbenchmarks (section 3.3, Figure 2):
//   * warm/anonymous faults average 2.5 us, >90% under 4 us;
//   * page-cache minor faults average 3.7 us, >90% under 8 us;
//   * major faults pay kernel entry plus the disk read (>= 32 us on NVMe);
//   * userfaultfd adds "several microseconds" of userspace handling per fault and,
//     because the guest cannot resume immediately, extra context switches
//     (kvm_vcpu_block waiting, Table 3).

#ifndef FAASNAP_SRC_MEM_COST_MODEL_H_
#define FAASNAP_SRC_MEM_COST_MODEL_H_

#include "src/common/sim_time.h"

namespace faasnap {

// Page-level fault costs used by the FaultEngine.
struct HostCostModel {
  // Anonymous (zero-fill) fault: allocate + zero + install PTE.
  Duration anonymous_fault = Duration::Nanos(2500);
  // Minor fault served from the page cache: lookup + install PTE. The scattered
  // figure comes from the paper's image-diff measurement (3.7 us average).
  Duration minor_fault = Duration::Nanos(3700);
  // Minor fault that continues a sequential stream (page == previous + 1): the
  // radix-tree walk and PTE locality make these measurably cheaper. This is what
  // lets an aggressively-reading guest (read-list, recognition) outrun the FaaSnap
  // loader, reproducing the Cached-beats-FaaSnap crossover of section 6.2.
  Duration minor_fault_sequential = Duration::Nanos(2200);
  // Kernel entry/exit and bookkeeping added on top of the disk wait for a major fault.
  Duration major_fault_overhead = Duration::Nanos(2000);
  // Extra cost when a fault finds its page already in flight and must sleep on the
  // existing IO (lock + wait-queue round trip).
  Duration inflight_wait_overhead = Duration::Nanos(1500);
  // First guest access to a page pre-installed via UFFDIO_COPY: the host PTE exists
  // but the guest's second-dimension (EPT) entry still faults once, cheaply
  // (Figure 2: REAP working-set pages fault in under 4 us).
  Duration uffd_preinstalled_fault = Duration::Nanos(2000);
  // Round trip to a userspace userfaultfd handler: fault delivery, handler wakeup,
  // UFFDIO_COPY, and waking the guest vCPU (two context switches).
  Duration uffd_round_trip = Duration::Nanos(6000);
  // Userspace pread of one 4 KiB page that hits the page cache (REAP handler path).
  Duration cached_pread_page = Duration::Nanos(2500);
  // Installing one prefetched page via UFFDIO_COPY during REAP's working set load.
  Duration uffd_copy_page = Duration::Nanos(700);
  // One multi-page UFFDIO_COPY ioctl covering a contiguous run (batched install
  // lever): the fixed ioctl entry/exit plus wakeup, paid once per run.
  Duration uffd_batch_install = Duration::Nanos(3000);
  // Marginal cost per additional page inside a batched UFFDIO_COPY: the memcpy
  // and PTE install without a separate ioctl/wakeup round trip.
  Duration uffd_batch_per_page = Duration::Nanos(150);
  // One fault on a 2 MiB huge mapping: a single kernel entry installs 512 pages
  // (one PMD) instead of 512 separate 4 KiB faults.
  Duration huge_fault = Duration::Nanos(9000);
  // Splitting a huge region back to 4 KiB mappings when it turns out sparse or
  // partially file-backed (copy-on-touch fallback); charged once per region on
  // the fault that triggers the split.
  Duration huge_split = Duration::Nanos(4000);
  // One mmap(MAP_FIXED) call in the VMM during setup. With >1000 loading-set
  // regions this cost is why the paper merges regions (section 4.6).
  Duration mmap_call = Duration::Nanos(1500);
  // Deterministic per-page dispersion of the constant fault costs (mean ~1.0x,
  // 5% outlier tail), reproducing Figure 2's spread. Disable for exact-cost tests.
  bool cost_dispersion = true;
};

// OS co-design levers on the fault path (Holmes et al.: batched installs, huge
// mappings, fault coalescing). Each lever is individually toggleable and off by
// default; with all three disabled the fault path is event-for-event identical
// to a build without them (the exactness gate the ablation benches rely on).
struct FaultPathConfig {
  // Run-granular UFFDIO_COPY: REAP's working-set install and the uffd fault path
  // charge one uffd_batch_install per contiguous run plus uffd_batch_per_page,
  // instead of uffd_copy_page (or a full round trip) per page.
  bool batched_uffd_install = false;
  // Cap on how many pages one batched uffd fault may install around the faulting
  // page (the monitor copies at most this run from its pread buffer).
  PageCount uffd_batch_max_pages = PageCount::FromPages(64);
  // 2 MiB-aligned huge regions over dense working-set areas: one fault installs
  // the whole region at huge_fault, with copy-on-touch splitting when the region
  // is sparse or not fully backed.
  bool huge_pages = false;
  PageCount huge_region_pages = PageCount::FromPages(512);  // 2 MiB of 4 KiB pages
  // Minimum fraction of a huge region the loading set must cover for the region
  // to be mapped huge.
  double huge_density_threshold = 0.9;
  // Join neighbors of an in-flight fault: retire the whole contiguous run
  // covered by the existing IO in one fault instead of paying
  // inflight_wait_overhead per page.
  bool fault_coalescing = false;

  bool any_enabled() const {
    return batched_uffd_install || huge_pages || fault_coalescing;
  }
};

// Orchestration-level setup costs (the gray bars of Figure 1).
struct SetupCostModel {
  // Starting the Firecracker process, connecting the API socket, restoring vCPU and
  // device state from the snapshot state file.
  Duration vmm_restore = Duration::Millis(45);
  // Extra daemon work per invocation (request routing, namespace attach).
  Duration daemon_dispatch = Duration::Millis(2);
  // Cold start: boot the VM (kernel + virtual devices) from the image...
  Duration cold_boot_base = Duration::Seconds(2);
  // ...plus runtime/library/function initialization, roughly proportional to the
  // amount of state the runtime builds (section 2.1: "seconds to minutes").
  Duration cold_init_per_page = Duration::Nanos(12000);
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_MEM_COST_MODEL_H_

// Host OS page cache model.
//
// One PageCache instance models the whole host's cache; it is shared by every VM,
// the FaaSnap loader, and readahead — the sharing is what Figure 10's same-snapshot
// burst results depend on ("the guests are in effect loading the cache for each
// other"). State per (file, page):
//
//   kAbsent   — not cached; a read must go to the device,
//   kInFlight — a device read covering the page has been issued; faulters can sleep
//               on it instead of issuing a duplicate read,
//   kPresent  — cached; access is a minor fault.
//
// The cache is passive with respect to IO: callers (FaultEngine, the FaaSnap
// loader, REAP's fetcher) issue device reads themselves and bracket them with
// BeginRead/CompleteRead so concurrent actors coordinate through cache state.
//
// Thread safety: all state (present sets, the in-flight interval index, waiter
// lists) is guarded by one mutex; waiters are always invoked with the lock
// released, so a woken waiter may immediately re-enter the cache (BeginRead a
// retry, WaitFor another page) without deadlocking.

#ifndef FAASNAP_SRC_MEM_PAGE_CACHE_H_
#define FAASNAP_SRC_MEM_PAGE_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/common/file_id.h"
#include "src/common/mutex.h"
#include "src/common/page_range.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/obs/metrics_registry.h"
#include "src/sim/simulation.h"

namespace faasnap {

class PageCache {
 public:
  enum class PageState { kAbsent, kInFlight, kPresent };

  // Opaque token for an in-flight read; returned by BeginRead.
  using ReadHandle = uint64_t;

  PageCache() = default;
  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  PageState GetState(FileId file, PageIndex page) const FAASNAP_EXCLUDES(mu_);
  bool IsPresent(FileId file, PageIndex page) const {
    return GetState(file, page) == PageState::kPresent;
  }

  // Marks `range` of `file` as in flight. The caller must later call CompleteRead
  // with the returned handle (typically from the device-completion callback).
  ReadHandle BeginRead(FileId file, PageRange range) FAASNAP_EXCLUDES(mu_);

  // Installs the read's pages as present and wakes all waiters registered on
  // them with OkStatus(). Waiters run with the lock released.
  void CompleteRead(ReadHandle handle) FAASNAP_EXCLUDES(mu_);

  // Retires a failed read: the pages are NOT installed (they return to kAbsent,
  // so a later access may retry the IO) and all waiters are woken with
  // `status`, which must be non-OK. Waiters left unnotified would sleep
  // forever — every BeginRead must end in CompleteRead or FailRead.
  void FailRead(ReadHandle handle, const Status& status) FAASNAP_EXCLUDES(mu_);

  // Waiter callback: receives OkStatus() when the page became present, or the
  // read's failure when the covering IO failed (page still absent).
  using Waiter = std::function<void(const Status&)>;

  // Registers `done` to run when `page` (which must be kInFlight) settles.
  void WaitFor(FileId file, PageIndex page, Waiter done) FAASNAP_EXCLUDES(mu_);

  // Directly installs pages as present (snapshot preload for the Cached baseline,
  // pages written by the VMM, etc.).
  void Insert(FileId file, PageRange range) FAASNAP_EXCLUDES(mu_);

  // Subset of `range` that is absent (not present and not in flight). This is what
  // a prefetcher still needs to read.
  PageRangeSet AbsentIn(FileId file, PageRange range) const FAASNAP_EXCLUDES(mu_);

  // True iff every page of `range` is present (a huge-region install requires the
  // whole 2 MiB of backing data cached).
  bool AllPresent(FileId file, PageRange range) const FAASNAP_EXCLUDES(mu_);

  // The in-flight read span covering `page`, or an empty range at `page` if no
  // read covers it. Fault coalescing joins this IO for the whole span instead of
  // taking one inflight-wait fault per page.
  PageRange InFlightSpanCovering(FileId file, PageIndex page) const FAASNAP_EXCLUDES(mu_);

  // The contiguous present run containing `page`, clamped to at most `max_before`
  // pages before and `max_after` after it; empty at `page` if not present. This
  // is the run a batched uffd handler can install from one pread buffer.
  PageRange PresentRunAround(FileId file, PageIndex page, uint64_t max_before,
                             uint64_t max_after) const FAASNAP_EXCLUDES(mu_);

  // All present pages of `file` — the model's mincore(2) over a mapped file.
  PageRangeSet PresentPages(FileId file) const FAASNAP_EXCLUDES(mu_);

  // echo 3 > /proc/sys/vm/drop_caches between experiments (section 6.1).
  // Requires no reads in flight.
  void DropAll() FAASNAP_EXCLUDES(mu_);
  void DropFile(FileId file) FAASNAP_EXCLUDES(mu_);

  // Total pages cached across all files (page-cache memory footprint, section 7.3).
  uint64_t present_page_count() const FAASNAP_EXCLUDES(mu_);

  // Attaches metrics: pages read into / inserted into the cache, reads begun,
  // waiters registered, and a footprint gauge. Null detaches; detached cost is
  // one branch per operation.
  void set_observability(MetricsRegistry* metrics) FAASNAP_EXCLUDES(mu_);

 private:
  struct InFlightRead {
    FileId file = kInvalidFileId;
    PageRange range;
    std::vector<Waiter> waiters;
  };

  // Shared tail of CompleteRead/FailRead: unlinks the read and returns it.
  InFlightRead TakeRead(ReadHandle handle) FAASNAP_REQUIRES(mu_);

  // One outstanding read's interval, indexed by its start page in
  // FileState::in_flight. In-flight intervals of one file are pairwise disjoint
  // (BeginRead is only issued for absent pages), so a start-keyed ordered map
  // supports O(log n) point and range queries.
  struct InFlightSpan {
    PageIndex end = 0;  // exclusive
    ReadHandle handle = 0;
  };

  struct FileState {
    PageRangeSet present;
    std::map<PageIndex, InFlightSpan> in_flight;  // key: range.first
  };

  const FileState* FindFile(FileId file) const FAASNAP_REQUIRES(mu_);

  // Adjusts the running footprint count (and gauge, when attached).
  void NotePresentDelta(int64_t delta) FAASNAP_REQUIRES(mu_);

  // Iterator to the first in-flight span of `fs` with end > page, or end().
  static std::map<PageIndex, InFlightSpan>::const_iterator FirstSpanEndingAfter(
      const FileState& fs, PageIndex page);

  mutable Mutex mu_;
  std::map<FileId, FileState> files_ FAASNAP_GUARDED_BY(mu_);
  std::map<ReadHandle, InFlightRead> reads_ FAASNAP_GUARDED_BY(mu_);
  ReadHandle next_handle_ FAASNAP_GUARDED_BY(mu_) = 1;

  Counter* reads_begun_ FAASNAP_GUARDED_BY(mu_) = nullptr;
  Counter* read_pages_ FAASNAP_GUARDED_BY(mu_) = nullptr;
  Counter* inserted_pages_ FAASNAP_GUARDED_BY(mu_) = nullptr;
  Counter* waiters_ FAASNAP_GUARDED_BY(mu_) = nullptr;
  // Registered lazily on the first failure (reads only fail under fault
  // injection), so fault-free runs keep a bit-identical metrics snapshot.
  Counter* failed_reads_ FAASNAP_GUARDED_BY(mu_) = nullptr;
  MetricsRegistry* metrics_ FAASNAP_GUARDED_BY(mu_) = nullptr;
  Gauge* present_pages_gauge_ FAASNAP_GUARDED_BY(mu_) = nullptr;
  uint64_t present_total_ FAASNAP_GUARDED_BY(mu_) = 0;  // running count backing the gauge
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_MEM_PAGE_CACHE_H_

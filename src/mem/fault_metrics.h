// Per-run fault instrumentation, standing in for the paper's bpftrace/perf probes
// on kvm_mmu_page_fault and kvm_vcpu_block (sections 3.3, 6.4, 6.5).

#ifndef FAASNAP_SRC_MEM_FAULT_METRICS_H_
#define FAASNAP_SRC_MEM_FAULT_METRICS_H_

#include <cstdint>
#include <string>

#include "src/common/histogram.h"
#include "src/common/sim_time.h"
#include "src/common/units.h"

namespace faasnap {

// How a guest page access was resolved.
enum class FaultClass : int {
  kNoFault = 0,        // page already installed
  kAnonymous,          // zero-fill fault on anonymous backing
  kMinor,              // served from the page cache
  kMajor,              // blocked on a disk read this fault issued
  kInFlightWait,       // blocked on a disk read someone else already issued
  kUffdPreinstalled,   // cheap first-touch on a UFFDIO_COPY-installed page
  kUffdHandled,        // resolved by a userspace userfaultfd handler
  kHugeInstall,        // one fault installed a whole 2 MiB huge region
  kClassCount,
};

std::string_view FaultClassName(FaultClass c);

// Aggregated by the FaultEngine across one VM run.
struct FaultMetrics {
  FaultMetrics() : latency_histogram(Duration::Nanos(500), /*num_buckets=*/11) {}

  int64_t counts[static_cast<int>(FaultClass::kClassCount)] = {};
  // Total time the vCPU spent inside fault handling, summed over all classes
  // (kvm_mmu_page_fault time; Figure 2's "total page fault handling time").
  Duration total_fault_time;
  // Fault time plus the blocked-vCPU wait (kvm_vcpu_block): Table 3's
  // "page fault waiting time".
  Duration total_wait_time;
  // Figure 2's distribution: one sample per fault (kNoFault excluded).
  Log2Histogram latency_histogram;
  // Disk traffic issued *by fault handling* (excludes prefetch loaders):
  // Figure 9's "# of block requests".
  uint64_t fault_disk_requests = 0;
  ByteCount fault_disk_bytes;
  // Fault-path lever attribution (all zero with the levers disabled, keeping
  // reports bit-identical). Batched uffd installs: run-granular UFFDIO_COPYs
  // and the pages they covered (setup-time working-set installs plus batched
  // fault resolutions).
  uint64_t batch_installs = 0;
  PageCount batch_installed_pages;
  // Huge-page lever: whole-region installs, pages they covered, and regions
  // split back to 4 KiB on the copy-on-touch fallback.
  uint64_t huge_installs = 0;
  PageCount huge_installed_pages;
  uint64_t huge_splits = 0;
  // Coalescing lever: neighbor pages retired by someone else's in-flight fault
  // (each saved one inflight_wait_overhead fault of its own).
  PageCount coalesced_pages;

  int64_t count(FaultClass c) const { return counts[static_cast<int>(c)]; }
  int64_t total_faults() const;
  int64_t major_faults() const { return count(FaultClass::kMajor); }
  void RecordFault(FaultClass c, Duration handling, Duration extra_wait = Duration::Zero());
  void Merge(const FaultMetrics& other);
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_MEM_FAULT_METRICS_H_

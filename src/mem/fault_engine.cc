#include "src/mem/fault_engine.h"

#include <algorithm>
#include <utility>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/obs/observability.h"

namespace faasnap {

namespace {

// Deterministic per-(page, class) dispersion of the constant fault costs: real
// fault-handling times spread (lock contention, TLB shootdowns, cache misses) as
// Figure 2's distributions show. 95% of faults land in [0.6x, 1.2x] and 5% form a
// 2-4x outlier tail; the mean stays ~1.0x so aggregate calibration is unchanged.
Duration DisperseCost(bool enabled, Duration base, PageIndex page, FaultClass cls) {
  if (!enabled) {
    return base;
  }
  Rng rng(page * 0x9e3779b97f4a7c15ULL ^ (static_cast<uint64_t>(cls) << 56) ^ 0xD15Eull);
  const double u = rng.NextDouble();
  const double v = rng.NextDouble();
  const double factor = u < 0.95 ? 0.6 + 0.6 * v : 2.0 + 2.0 * v;
  return Duration::Nanos(
      static_cast<int64_t>(static_cast<double>(base.nanos()) * factor));
}

}  // namespace

FaultEngine::FaultEngine(Simulation* sim, PageCache* cache, StorageRouter* storage,
                         AddressSpace* space, ReadaheadPolicy* readahead,
                         std::function<PageCount(FileId)> file_size_pages, HostCostModel costs)
    : sim_(sim),
      cache_(cache),
      storage_(storage),
      space_(space),
      readahead_(readahead),
      file_size_pages_(std::move(file_size_pages)),
      costs_(costs) {
  FAASNAP_CHECK(sim_ != nullptr && cache_ != nullptr && storage_ != nullptr &&
                space_ != nullptr && readahead_ != nullptr);
}

void FaultEngine::RegisterUffd(PageRangeSet region, UffdHandler* handler) {
  FAASNAP_CHECK(handler != nullptr);
  uffd_region_ = std::move(region);
  uffd_handler_ = handler;
}

void FaultEngine::set_observability(SpanTracer* spans, MetricsRegistry* metrics) {
  spans_ = spans;
  if (spans_ != nullptr) {
    fault_name_ = spans_->InternName(obsname::kFault);
    uffd_resolve_name_ = spans_->InternName(obsname::kUffdResolve);
  }
  for (int i = 0; i < static_cast<int>(FaultClass::kClassCount); ++i) {
    class_counters_[i] = nullptr;
    class_histograms_[i] = nullptr;
    if (metrics == nullptr) {
      continue;
    }
    const FaultClass cls = static_cast<FaultClass>(i);
    // The huge-install class only exists when the huge lever is on; registering
    // it unconditionally would perturb disabled runs' metric snapshots.
    if (cls == FaultClass::kHugeInstall && !fault_path_.huge_pages) {
      continue;
    }
    const MetricLabels labels = {{"class", std::string(FaultClassName(cls))}};
    class_counters_[i] = metrics->GetCounter("faults.by_class", labels);
    // No handling-time histogram for no-faults: they retire synchronously with
    // zero latency, and zero samples would pollute the percentile summaries.
    if (cls != FaultClass::kNoFault) {
      class_histograms_[i] = metrics->GetHistogram("fault.handling_ns", labels);
    }
  }
  batch_installs_ctr_ = nullptr;
  batch_pages_ctr_ = nullptr;
  batch_size_hist_ = nullptr;
  huge_installs_ctr_ = nullptr;
  huge_pages_ctr_ = nullptr;
  huge_splits_ctr_ = nullptr;
  coalesced_ctr_ = nullptr;
  if (metrics != nullptr && fault_path_.batched_uffd_install) {
    batch_installs_ctr_ = metrics->GetCounter("faults.batch_installs");
    batch_pages_ctr_ = metrics->GetCounter("faults.batch_pages");
    // The batch-size series abuses the log2 histogram as a page-count digest:
    // the "duration" recorded is the page count, so the lower edge is 1 page.
    batch_size_hist_ =
        metrics->GetHistogram("faults.batch_size", {}, Duration::Nanos(1), /*num_buckets=*/11);
  }
  if (metrics != nullptr && fault_path_.huge_pages) {
    huge_installs_ctr_ = metrics->GetCounter("faults.huge_installs");
    huge_pages_ctr_ = metrics->GetCounter("faults.huge_pages");
    huge_splits_ctr_ = metrics->GetCounter("faults.huge_splits");
  }
  if (metrics != nullptr && fault_path_.fault_coalescing) {
    coalesced_ctr_ = metrics->GetCounter("faults.coalesced");
  }
}

void FaultEngine::NoteBatchInstall(uint64_t pages) {
  metrics_.batch_installs++;
  metrics_.batch_installed_pages += PageCount::FromPages(pages);
  if (batch_installs_ctr_ != nullptr) {
    batch_installs_ctr_->Add(1);
    batch_pages_ctr_->Add(static_cast<int64_t>(pages));
    batch_size_hist_->Record(Duration::Nanos(static_cast<int64_t>(pages)));
  }
}

void FaultEngine::FinishFault(PageIndex page, FaultClass cls, SimTime fault_start,
                              Duration tail_cost, Duration extra_wait, SpanId fault_span,
                              std::function<void(FaultClass)> done) {
  FinishFaultRun(PageRange{page, 1}, page, cls, PageInstallState::kPresent, fault_start,
                 tail_cost, extra_wait, fault_span, std::move(done));
}

void FaultEngine::FinishFaultRun(PageRange run, PageIndex page, FaultClass cls,
                                 PageInstallState neighbor_state, SimTime fault_start,
                                 Duration tail_cost, Duration extra_wait, SpanId fault_span,
                                 std::function<void(FaultClass)> done) {
  // Called at IO-completion (or immediately for non-blocking faults); the guest
  // resumes after `tail_cost` of post-IO kernel work plus any scheduler-induced
  // stall (`extra_wait`, e.g. kvm_vcpu_block context switches on uffd faults).
  sim_->ScheduleAfter(tail_cost + extra_wait, [this, run, page, cls, neighbor_state,
                                               fault_start, extra_wait, fault_span,
                                               done = std::move(done)] {
    const Duration handling = (sim_->now() - fault_start) - extra_wait;
    metrics_.RecordFault(cls, handling, extra_wait);
    if (spans_ != nullptr) {
      spans_->End(fault_span, sim_->now(), static_cast<uint64_t>(cls));
    }
    if (class_counters_[static_cast<int>(cls)] != nullptr) {
      class_counters_[static_cast<int>(cls)]->Add(1);
      if (class_histograms_[static_cast<int>(cls)] != nullptr) {
        class_histograms_[static_cast<int>(cls)]->Record(handling);
      }
    }
    if (cls == FaultClass::kUffdHandled) {
      // The handler resolved the fault with UFFDIO_COPY: anonymous page copies
      // (the whole run when the batched lever produced one).
      space_->NoteAnonCopies(run.count);
      if (fault_path_.batched_uffd_install) {
        NoteBatchInstall(run.count);
      }
    }
    if (cls == FaultClass::kHugeInstall) {
      metrics_.huge_installs++;
      metrics_.huge_installed_pages += PageCount::FromPages(run.count);
      if (huge_installs_ctr_ != nullptr) {
        huge_installs_ctr_->Add(1);
        huge_pages_ctr_->Add(static_cast<int64_t>(run.count));
      }
    }
    if (cls == FaultClass::kInFlightWait && run.count > 1) {
      metrics_.coalesced_pages += PageCount::FromPages(run.count - 1);
      if (coalesced_ctr_ != nullptr) {
        coalesced_ctr_->Add(static_cast<int64_t>(run.count - 1));
      }
    }
    if (run.count > 1) {
      space_->SetInstallState(run, neighbor_state);
    }
    space_->SetInstallState(page, PageInstallState::kPresent);
    done(cls);
  });
}

PageRange FaultEngine::TrimToUninstalled(PageRange run, PageIndex page) const {
  if (run.empty() || !run.Contains(page)) {
    return PageRange{page, 1};
  }
  const PageRange mapping = space_->MappingRun(page);
  const PageIndex lo = std::max(run.first, mapping.first);
  const PageIndex hi = std::min(run.end(), mapping.end());
  PageIndex start = page;
  while (start > lo && space_->install_state(start - 1) == PageInstallState::kNotPresent) {
    --start;
  }
  PageIndex end = page + 1;
  while (end < hi && space_->install_state(end) == PageInstallState::kNotPresent) {
    ++end;
  }
  return PageRange{start, end - start};
}

bool FaultEngine::HugeInstallable(PageRange region) const {
  // Regions clamped at the guest end are partial and stay 4 KiB.
  if (region.count < space_->huge_region_pages().value()) {
    return false;
  }
  const PageRange mapping = space_->MappingRun(region.first);
  if (mapping.first > region.first || mapping.end() < region.end()) {
    return false;
  }
  if (!space_->AllInState(region, PageInstallState::kNotPresent)) {
    return false;
  }
  const PageBacking backing = space_->Resolve(region.first);
  if (backing.kind == BackingKind::kAnonymous) {
    return true;
  }
  if (backing.kind != BackingKind::kFile) {
    return false;
  }
  // A file-backed huge mapping needs the whole 2 MiB of backing data resident;
  // anything less falls back to 4 KiB copy-on-touch.
  return cache_->AllPresent(backing.file, PageRange{backing.file_page, region.count});
}

void FaultEngine::FailAccess(PageIndex page, SpanId fault_span, const Status& status) {
  (void)page;  // the span (keyed by fault_span) already identifies the page
  if (spans_ != nullptr) {
    spans_->End(fault_span, sim_->now(), static_cast<uint64_t>(status.code()));
  }
  FAASNAP_CHECK(failure_sink_ != nullptr &&
                "terminal device read failure with no failure sink installed");
  failure_sink_(status);
}

bool FaultEngine::AccessSlow(PageIndex page, std::function<void(FaultClass)> done) {
  const PageInstallState state = space_->install_state(page);
  const SimTime fault_start = sim_->now();
  const SpanId fault_span =
      spans_ != nullptr ? spans_->BeginId(fault_start, ObsLane::kVcpu, fault_name_, page,
                                          0, invocation_span_)
                        : kNoSpan;

  if (state == PageInstallState::kSoftPresent) {
    // Host PTE installed by UFFDIO_COPY; one cheap guest-dimension fault remains.
    FinishFault(page, FaultClass::kUffdPreinstalled, fault_start,
                DisperseCost(costs_.cost_dispersion, costs_.uffd_preinstalled_fault, page,
                             FaultClass::kUffdPreinstalled),
                Duration::Zero(), fault_span, std::move(done));
    return false;
  }

  // Not present. userfaultfd interception takes priority over the kernel path.
  if (uffd_handler_ != nullptr && uffd_region_.Contains(page)) {
    const SpanId resolve_span =
        spans_ != nullptr ? spans_->BeginId(fault_start, ObsLane::kUffd, uffd_resolve_name_,
                                            page, 0, fault_span)
                          : kNoSpan;
    if (fault_path_.batched_uffd_install) {
      // Batched lever: the handler reports the run it produced; one multi-page
      // UFFDIO_COPY installs it. The round trip is paid once; neighbors cost
      // only the marginal copy, and the guest first-touches them later as
      // cheap preinstalled faults.
      uffd_handler_->HandleFaultBatched(
          page, [this, page, fault_start, fault_span, resolve_span, done = std::move(done)](
                    const Status& status, PageRange run) mutable {
            if (spans_ != nullptr) {
              spans_->End(resolve_span, sim_->now());
            }
            if (!status.ok()) {
              FailAccess(page, fault_span, status);
              return;
            }
            run = TrimToUninstalled(run, page);
            const Duration cost =
                costs_.uffd_round_trip +
                costs_.uffd_batch_per_page * static_cast<int64_t>(run.count - 1);
            FinishFaultRun(run, page, FaultClass::kUffdHandled,
                           PageInstallState::kSoftPresent, fault_start, cost,
                           uffd_vcpu_block_extra_, fault_span, std::move(done));
          });
      return false;
    }
    uffd_handler_->HandleFault(page, [this, page, fault_start, fault_span, resolve_span,
                                      done = std::move(done)](const Status& status) mutable {
      if (spans_ != nullptr) {
        spans_->End(resolve_span, sim_->now());
      }
      if (!status.ok()) {
        FailAccess(page, fault_span, status);
        return;
      }
      // Handler resolved the contents; account the uffd round trip plus the
      // vCPU-block penalty (guest cannot resume immediately; section 6.4).
      FinishFault(page, FaultClass::kUffdHandled, fault_start, costs_.uffd_round_trip,
                  uffd_vcpu_block_extra_, fault_span, std::move(done));
    });
    return false;
  }

  // Huge-page lever: a fault on an eligible 2 MiB region installs the whole
  // region in one kernel entry when it can actually be mapped huge; otherwise
  // the region splits back to 4 KiB (copy-on-touch), this fault pays the split
  // once, and classification proceeds normally below.
  Duration split_extra = Duration::Zero();
  if (fault_path_.huge_pages &&
      space_->huge_region_state(page) == HugeRegionState::kEligible) {
    const PageRange region = space_->HugeRegionOf(page);
    if (HugeInstallable(region)) {
      space_->SetHugeRegionState(page, HugeRegionState::kInstalled);
      FinishFaultRun(region, page, FaultClass::kHugeInstall, PageInstallState::kPresent,
                     fault_start,
                     DisperseCost(costs_.cost_dispersion, costs_.huge_fault, page,
                                  FaultClass::kHugeInstall),
                     Duration::Zero(), fault_span, std::move(done));
      return false;
    }
    space_->SetHugeRegionState(page, HugeRegionState::kSplit);
    metrics_.huge_splits++;
    if (huge_splits_ctr_ != nullptr) {
      huge_splits_ctr_->Add(1);
    }
    split_extra = costs_.huge_split;
  }

  const PageBacking backing = space_->Resolve(page);
  switch (backing.kind) {
    case BackingKind::kAnonymous:
      FinishFault(page, FaultClass::kAnonymous, fault_start,
                  DisperseCost(costs_.cost_dispersion, costs_.anonymous_fault, page,
                               FaultClass::kAnonymous) +
                      split_extra,
                  Duration::Zero(), fault_span, std::move(done));
      return false;
    case BackingKind::kFile: {
      const PageCache::PageState cache_state = cache_->GetState(backing.file, backing.file_page);
      if (cache_state == PageCache::PageState::kPresent) {
        const bool sequential = page == last_minor_page_ + 1;
        last_minor_page_ = page;
        FinishFault(page, FaultClass::kMinor, fault_start,
                    DisperseCost(costs_.cost_dispersion,
                                 sequential ? costs_.minor_fault_sequential
                                            : costs_.minor_fault,
                                 page, FaultClass::kMinor) +
                        split_extra,
                    Duration::Zero(), fault_span, std::move(done));
        return false;
      }
      // Coalescing lever: the page is covered by someone else's in-flight IO.
      // Instead of retiring just this page (and paying a wait per neighbor as
      // each is touched), join the IO and retire the whole contiguous run it
      // covers in one fault.
      if (cache_state == PageCache::PageState::kInFlight && fault_path_.fault_coalescing) {
        const PageRange span = cache_->InFlightSpanCovering(backing.file, backing.file_page);
        const PageRange mapping = space_->MappingRun(page);
        // Translate the file-page span to guest pages, clamped to the mapping
        // run (outside it the file offsets no longer correspond linearly).
        const uint64_t before =
            std::min(backing.file_page - span.first, page - mapping.first);
        const uint64_t after = std::min(span.end() - backing.file_page - 1,
                                        mapping.end() - page - 1);
        const PageRange candidate{page - before, before + after + 1};
        const Duration tail = costs_.inflight_wait_overhead + split_extra;
        EnsureFilePage(backing.file, backing.file_page, /*charge_to_faults=*/true,
                       [this, page, candidate, tail, fault_start, fault_span,
                        done = std::move(done)](const Status& status,
                                                PageCache::PageState) mutable {
                         if (!status.ok()) {
                           FailAccess(page, fault_span, status);
                           return;
                         }
                         const PageRange run = TrimToUninstalled(candidate, page);
                         FinishFaultRun(run, page, FaultClass::kInFlightWait,
                                        PageInstallState::kPresent, fault_start, tail,
                                        Duration::Zero(), fault_span, std::move(done));
                       },
                       fault_span);
        return false;
      }
      // Either already in flight (wait on the existing IO) or absent (issue a read
      // with readahead, then wait). EnsureFilePage handles both.
      const FaultClass cls = cache_state == PageCache::PageState::kInFlight
                                 ? FaultClass::kInFlightWait
                                 : FaultClass::kMajor;
      const Duration tail = (cls == FaultClass::kMajor ? costs_.major_fault_overhead
                                                       : costs_.inflight_wait_overhead) +
                            split_extra;
      EnsureFilePage(backing.file, backing.file_page, /*charge_to_faults=*/true,
                     [this, page, cls, tail, fault_start, fault_span,
                      done = std::move(done)](const Status& status, PageCache::PageState) mutable {
                       if (!status.ok()) {
                         FailAccess(page, fault_span, status);
                         return;
                       }
                       FinishFault(page, cls, fault_start, tail, Duration::Zero(),
                                   fault_span, std::move(done));
                     },
                     fault_span);
      return false;
    }
    case BackingKind::kUnmapped:
      break;
  }
  FAASNAP_CHECK(false && "guest access to unmapped page");
  return true;
}

void FaultEngine::EnsureFilePage(FileId file, PageIndex page, bool charge_to_faults,
                                 std::function<void(const Status&, PageCache::PageState)> done,
                                 SpanId parent) {
  const PageCache::PageState initial = cache_->GetState(file, page);
  switch (initial) {
    case PageCache::PageState::kPresent:
      done(OkStatus(), initial);
      return;
    case PageCache::PageState::kInFlight:
      cache_->WaitFor(file, page, [initial, done = std::move(done)](const Status& status) {
        done(status, initial);
      });
      return;
    case PageCache::PageState::kAbsent:
      break;
  }
  // Miss: read the faulting page plus the readahead window, skipping anything the
  // cache already has or has in flight.
  const PageCount file_pages = file_size_pages_(file);
  const PageRange window = readahead_->WindowFor(file, page, file_pages);
  const PageRangeSet missing = cache_->AbsentIn(file, window);
  FAASNAP_CHECK(missing.Contains(page));
  for (const PageRange& r : missing.ranges()) {
    const PageCache::ReadHandle handle = cache_->BeginRead(file, r);
    if (charge_to_faults) {
      metrics_.fault_disk_requests++;
      metrics_.fault_disk_bytes += PagesToBytes(PageCount::FromPages(r.count));
    }
    // The range holding the faulting page is guest-blocking (demand class);
    // the rest of the readahead window is speculative, so it queues as
    // prefetch and cannot delay other vCPUs' demand faults at the device.
    const ReadClass cls = r.first <= page && page < r.end() ? ReadClass::kDemand
                                                            : ReadClass::kPrefetch;
    // A failed read must still retire the cache entry, or waiters (this fault
    // and anyone who piled onto the in-flight range) would sleep forever.
    storage_->ReadWithStatus(file, PagesToBytes(r.first), PagesToBytes(r.count),
                             [this, handle](Status status) {
                               if (status.ok()) {
                                 cache_->CompleteRead(handle);
                               } else {
                                 cache_->FailRead(handle, status);
                               }
                             },
                             parent, cls);
  }
  cache_->WaitFor(file, page, [initial, done = std::move(done)](const Status& status) {
    done(status, initial);
  });
}

}  // namespace faasnap

// FaultEngine: resolves guest page accesses against the host memory subsystem.
//
// This is the simulation's equivalent of the host kernel's fault path plus KVM's
// kvm_mmu_page_fault: given a guest-physical page access it consults the VM's
// address-space layering (anonymous vs file-backed), the shared page cache, the
// readahead policy, and the block device, then retires the access after the right
// amount of simulated time, recording the fault class and latency.
//
// userfaultfd is modeled by registering a region with a UffdHandler: not-present
// faults inside the region are delivered to the handler (REAP's userspace monitor)
// instead of the kernel file-backed path.

#ifndef FAASNAP_SRC_MEM_FAULT_ENGINE_H_
#define FAASNAP_SRC_MEM_FAULT_ENGINE_H_

#include <functional>

#include "src/common/page_range.h"
#include "src/mem/address_space.h"
#include "src/mem/cost_model.h"
#include "src/mem/fault_metrics.h"
#include "src/mem/page_cache.h"
#include "src/mem/readahead.h"
#include "src/obs/legacy_tracer.h"
#include "src/obs/span_tracer.h"
#include "src/sim/simulation.h"
#include "src/storage/storage_router.h"

namespace faasnap {

// Userspace fault handler interface (REAP's userfaultfd monitor).
class UffdHandler {
 public:
  virtual ~UffdHandler() = default;

  // Resolve the fault on `guest_page`: make the page's contents available and
  // call `done(OkStatus())` (on the simulation clock) when the UFFDIO_COPY could
  // be issued, or `done(error)` if the contents could not be produced (e.g. the
  // backing read failed terminally). The engine accounts the uffd round-trip
  // cost and installs the page on success; on failure it routes the error to
  // the failure sink.
  virtual void HandleFault(PageIndex guest_page, std::function<void(const Status&)> done) = 0;

  // Batched variant (batched-uffd-install lever): the handler may resolve a
  // whole contiguous run around `guest_page` from one pread buffer and report
  // it so the engine installs the run with a single multi-page UFFDIO_COPY.
  // `run` must contain `guest_page`; the engine trims it to pages that are
  // still uninstalled and within one mapping. The default forwards to the
  // single-page HandleFault, so existing handlers keep working unchanged.
  virtual void HandleFaultBatched(PageIndex guest_page,
                                  std::function<void(const Status&, PageRange)> done) {
    HandleFault(guest_page, [guest_page, done = std::move(done)](const Status& status) {
      done(status, PageRange{guest_page, 1});
    });
  }
};

class FaultEngine {
 public:
  // All pointers must outlive the engine. `file_size_pages` bounds readahead
  // windows at end-of-file for any file id the address space references.
  FaultEngine(Simulation* sim, PageCache* cache, StorageRouter* storage, AddressSpace* space,
              ReadaheadPolicy* readahead, std::function<PageCount(FileId)> file_size_pages,
              HostCostModel costs = {});

  // Routes not-present faults on `region` to `handler` (userfaultfd registration).
  void RegisterUffd(PageRangeSet region, UffdHandler* handler);

  // Performs a guest access to `page`.
  //  * Returns true if the access needed no fault (already installed); `done` is
  //    NOT called — the caller continues synchronously (this keeps hot loops from
  //    flooding the event queue).
  //  * Returns false if a fault is in progress; `done(fault_class)` fires on the
  //    sim clock once the access retires.
  //
  // The no-fault check stays inline so the overwhelmingly common "page already
  // installed" case costs a lookup and a counter bump; the fault machinery
  // (including span recording) lives out of line in AccessSlow.
  bool Access(PageIndex page, std::function<void(FaultClass)> done) {
    if (space_->install_state(page) == PageInstallState::kPresent) {
      // No-faults are counted (including the registry counter) but never enter
      // the handling-time histograms: a zero-duration sample per touched page
      // would drown the real fault latencies in the percentile summaries.
      metrics_.RecordFault(FaultClass::kNoFault, Duration::Zero());
      if (class_counters_[0] != nullptr) {
        class_counters_[0]->Add(1);
      }
      return true;
    }
    return AccessSlow(page, std::move(done));
  }

  // Makes a file page readable through the page cache (issuing a device read with
  // readahead on a miss) and calls `done(status, state_before)` at data-ready
  // time; a non-OK status means the covering read failed terminally and the page
  // is still absent. Used by the major-fault path and by REAP's handler pread.
  // Disk traffic is charged to fault metrics iff `charge_to_faults`. `parent`
  // links issued disk-read spans to the causing span.
  void EnsureFilePage(FileId file, PageIndex page, bool charge_to_faults,
                      std::function<void(const Status&, PageCache::PageState)> done,
                      SpanId parent = kNoSpan);

  // Sink for accesses that fail terminally (a device read error survived
  // retries/failover). The engine cannot resolve the fault, so instead of
  // retiring the access it reports the error here; the owning Vm aborts the
  // invocation with the status. Must be installed whenever failures are
  // possible (i.e. under fault injection).
  void set_failure_sink(std::function<void(const Status&)> sink) {
    failure_sink_ = std::move(sink);
  }

  // Enables fault-path levers (batched uffd installs, huge regions, fault
  // coalescing). Must be set before set_observability so the lever counters are
  // registered iff their lever is on — disabled runs keep a bit-identical
  // metrics snapshot. All levers default to off.
  void set_fault_path(const FaultPathConfig& fault_path) { fault_path_ = fault_path; }
  const FaultPathConfig& fault_path() const { return fault_path_; }

  // Records one batched UFFDIO_COPY covering `pages` contiguous pages (metrics,
  // counters, and the batch-size histogram). Called by the batched fault path
  // and by REAP's run-granular working-set install.
  void NoteBatchInstall(uint64_t pages);

  const FaultMetrics& metrics() const { return metrics_; }
  FaultMetrics& mutable_metrics() { return metrics_; }
  const HostCostModel& costs() const { return costs_; }
  AddressSpace* address_space() { return space_; }
  PageCache* page_cache() { return cache_; }
  StorageRouter* storage() { return storage_; }

  // Attaches span tracing and metrics. Every fault becomes a span on the vCPU
  // lane (child of the current invocation span); uffd round trips and issued
  // disk reads nest under it. Metrics: per-class fault counters and handling
  // histograms. Null pointers detach; detached cost is one branch per fault.
  void set_observability(SpanTracer* spans, MetricsRegistry* metrics);

  // Deprecated: legacy entry point; equivalent to attaching the EventTracer's
  // underlying span tracer with no metrics.
  void set_tracer(EventTracer* tracer) {
    set_observability(tracer != nullptr ? &tracer->spans() : nullptr, nullptr);
  }

  // Span all subsequent fault spans parent to (the running invocation's span).
  void set_invocation_span(SpanId span) { invocation_span_ = span; }

  // Extra vCPU-block time charged per uffd-handled fault (context switches while
  // KVM waits for the vCPU to be ready; section 6.4). Exposed for calibration.
  Duration uffd_vcpu_block_extra() const { return uffd_vcpu_block_extra_; }
  void set_uffd_vcpu_block_extra(Duration d) { uffd_vcpu_block_extra_ = d; }

 private:
  // The not-present tail of Access: classifies and retires the fault.
  bool AccessSlow(PageIndex page, std::function<void(FaultClass)> done);

  void FinishFault(PageIndex page, FaultClass cls, SimTime fault_start, Duration tail_cost,
                   Duration extra_wait, SpanId fault_span,
                   std::function<void(FaultClass)> done);

  // Run-granular retire (the lever paths): one fault sample for `page`, with
  // every other page of `run` installed as `neighbor_state` in the same event
  // (kPresent for huge installs and coalesced runs, kSoftPresent for batched
  // uffd copies the guest has not touched yet).
  void FinishFaultRun(PageRange run, PageIndex page, FaultClass cls,
                      PageInstallState neighbor_state, SimTime fault_start, Duration tail_cost,
                      Duration extra_wait, SpanId fault_span,
                      std::function<void(FaultClass)> done);

  // Clamps `run` to the maximal contiguous sub-run around `page` whose pages
  // are still uninstalled and share `page`'s mapping.
  PageRange TrimToUninstalled(PageRange run, PageIndex page) const;

  // Whether a huge-eligible region can actually be installed whole: fully
  // inside one mapping, fully uninstalled, and (for file backings) fully cached.
  bool HugeInstallable(PageRange region) const;

  // Terminal-failure tail of AccessSlow: closes the fault span and routes the
  // error to the failure sink (the access never retires; `done` is dropped).
  void FailAccess(PageIndex page, SpanId fault_span, const Status& status);

  Simulation* sim_;
  PageCache* cache_;
  StorageRouter* storage_;
  AddressSpace* space_;
  ReadaheadPolicy* readahead_;
  std::function<PageCount(FileId)> file_size_pages_;
  HostCostModel costs_;
  FaultPathConfig fault_path_;
  FaultMetrics metrics_;

  PageIndex last_minor_page_ = static_cast<PageIndex>(-2);

  SpanTracer* spans_ = nullptr;
  uint32_t fault_name_ = 0;         // pre-interned obsname::kFault
  uint32_t uffd_resolve_name_ = 0;  // pre-interned obsname::kUffdResolve
  SpanId invocation_span_ = kNoSpan;
  // Per-class counters and handling-time histograms; null when detached. The
  // no-fault slot never gets a histogram (no-faults have no handling latency)
  // and the huge-install slot only registers when the huge lever is on.
  Counter* class_counters_[static_cast<int>(FaultClass::kClassCount)] = {};
  Log2Histogram* class_histograms_[static_cast<int>(FaultClass::kClassCount)] = {};
  // Lever counters; registered in set_observability iff the lever is enabled,
  // so disabled runs keep a bit-identical metrics snapshot.
  Counter* batch_installs_ctr_ = nullptr;
  Counter* batch_pages_ctr_ = nullptr;
  Log2Histogram* batch_size_hist_ = nullptr;  // pages per batch, not nanoseconds
  Counter* huge_installs_ctr_ = nullptr;
  Counter* huge_pages_ctr_ = nullptr;
  Counter* huge_splits_ctr_ = nullptr;
  Counter* coalesced_ctr_ = nullptr;

  PageRangeSet uffd_region_;
  UffdHandler* uffd_handler_ = nullptr;
  std::function<void(const Status&)> failure_sink_;
  Duration uffd_vcpu_block_extra_ = Duration::Micros(25);
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_MEM_FAULT_ENGINE_H_

#include "src/mem/readahead.h"

#include <algorithm>

namespace faasnap {

ReadaheadPolicy::Stream& ReadaheadPolicy::StreamFor(FileId file) {
  auto it = streams_.find(file);
  if (it != streams_.end()) {
    it->second.last_use = ++use_tick_;
    return it->second;
  }
  if (config_.max_streams > 0 && streams_.size() >= config_.max_streams) {
    // Evict the least-recently-used stream. Linear scan: the table is small by
    // construction (max_streams), and the map's FileId order makes ties (never
    // expected — ticks are unique) deterministic.
    auto victim = streams_.begin();
    for (auto cand = streams_.begin(); cand != streams_.end(); ++cand) {
      if (cand->second.last_use < victim->second.last_use) {
        victim = cand;
      }
    }
    streams_.erase(victim);
  }
  Stream& stream = streams_[file];
  stream.last_use = ++use_tick_;
  return stream;
}

PageRange ReadaheadPolicy::WindowFor(FileId file, PageIndex page, PageCount file_pages) {
  if (page >= file_pages.value()) {
    return PageRange{page, 1};  // defensive; callers bound accesses to the file
  }
  if (!config_.enabled) {
    return PageRange{page, 1};
  }
  Stream& stream = StreamFor(file);
  uint64_t window = config_.initial_window_pages.value();
  bool sequential = true;
  if (stream.window != 0) {
    // "Sequential enough": the fault lands at or just past the previous fault,
    // within the reach of the last window. Random jumps shrink the window to the
    // fault-around size.
    const bool forward = page >= stream.last_fault;
    sequential = forward && (page - stream.last_fault) <= stream.window;
    window = sequential ? std::min(stream.window * 2, config_.max_window_pages.value())
                        : config_.random_window_pages.value();
  }
  stream.last_fault = page;
  stream.window = window;
  const uint64_t count = std::min(window, file_pages.value() - page);
  const PageRange result{page, std::max<uint64_t>(count, 1)};
  if (window_pages_ != nullptr) {
    (sequential ? sequential_windows_ : random_windows_)->Add(1);
    window_pages_->Add(static_cast<int64_t>(result.count));
  }
  return result;
}

void ReadaheadPolicy::set_observability(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    sequential_windows_ = nullptr;
    random_windows_ = nullptr;
    window_pages_ = nullptr;
    return;
  }
  sequential_windows_ = metrics->GetCounter("readahead.windows", {{"kind", "sequential"}});
  random_windows_ = metrics->GetCounter("readahead.windows", {{"kind", "random"}});
  window_pages_ = metrics->GetCounter("readahead.window_pages");
}

}  // namespace faasnap

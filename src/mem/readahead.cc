#include "src/mem/readahead.h"

#include <algorithm>

namespace faasnap {

PageRange ReadaheadPolicy::WindowFor(FileId file, PageIndex page, uint64_t file_pages) {
  if (page >= file_pages) {
    return PageRange{page, 1};  // defensive; callers bound accesses to the file
  }
  if (!config_.enabled) {
    return PageRange{page, 1};
  }
  Stream& stream = streams_[file];
  uint64_t window = config_.initial_window_pages;
  if (stream.window != 0) {
    // "Sequential enough": the fault lands at or just past the previous fault,
    // within the reach of the last window. Random jumps shrink the window to the
    // fault-around size.
    const bool forward = page >= stream.last_fault;
    const bool close = forward && (page - stream.last_fault) <= stream.window;
    window = close ? std::min(stream.window * 2, config_.max_window_pages)
                   : config_.random_window_pages;
  }
  stream.last_fault = page;
  stream.window = window;
  const uint64_t count = std::min(window, file_pages - page);
  return PageRange{page, std::max<uint64_t>(count, 1)};
}

}  // namespace faasnap

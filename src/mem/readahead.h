// Kernel readahead model.
//
// When a file-backed fault misses the page cache, Linux reads not just the faulting
// page but a window of following pages, growing the window while the access stream
// looks sequential. Readahead matters twice in the paper:
//
//   * it is why vanilla Firecracker restore is not 100% major faults — nearby pages
//     get pulled in (section 3.3), and
//   * the pages it pulls in are exactly what "host page recording" (section 4.4)
//     captures via mincore and REAP's faulting-page tracking misses.
//
// Model: per-file stream state {last_fault, window}. A fault within the current
// window's reach doubles the window (to a max); a random jump resets it.

#ifndef FAASNAP_SRC_MEM_READAHEAD_H_
#define FAASNAP_SRC_MEM_READAHEAD_H_

#include <cstdint>
#include <map>

#include "src/common/page_range.h"
#include "src/common/units.h"
#include "src/mem/page_cache.h"
#include "src/obs/metrics_registry.h"

namespace faasnap {

struct ReadaheadConfig {
  PageCount initial_window_pages = PageCount::FromPages(16);  // 64 KiB, fresh stream
  // 256 KiB (the Linux default readahead window is 128 KiB).
  PageCount max_window_pages = PageCount::FromPages(64);
  // Window after a random jump (fault-around-sized): Linux reads far less around
  // faults that do not look sequential.
  PageCount random_window_pages = PageCount::FromPages(8);
  // Cap on tracked per-file streams: the policy keeps stream state for at most
  // this many files, evicting the least-recently-faulting one when a new file
  // appears (an evicted file restarts with the initial window, exactly like a
  // fresh stream). Bounds memory on fleet-scale soaks.
  uint64_t max_streams = 128;
  bool enabled = true;
};

class ReadaheadPolicy {
 public:
  explicit ReadaheadPolicy(ReadaheadConfig config = {}) : config_(config) {}

  // Returns the file range the kernel will read for a faulting miss on `page` of
  // `file` (always includes `page` itself). `file_pages` bounds the window at EOF.
  PageRange WindowFor(FileId file, PageIndex page, PageCount file_pages);

  // Forgets stream state (e.g. after dropping caches between experiments).
  void Reset() { streams_.clear(); }

  // Number of files with live stream state (bounded by config().max_streams).
  size_t stream_count() const { return streams_.size(); }

  const ReadaheadConfig& config() const { return config_; }

  // Attaches metrics: windows computed (split sequential vs random-jump) and
  // total window pages. Null detaches.
  void set_observability(MetricsRegistry* metrics);

 private:
  struct Stream {
    PageIndex last_fault = 0;
    uint64_t window = 0;
    uint64_t last_use = 0;  // tick of the most recent WindowFor (LRU eviction)
  };

  // Returns the stream for `file`, evicting the least-recently-used stream
  // first if the table is at max_streams and `file` is new.
  Stream& StreamFor(FileId file);

  ReadaheadConfig config_;
  std::map<FileId, Stream> streams_;
  uint64_t use_tick_ = 0;

  Counter* sequential_windows_ = nullptr;
  Counter* random_windows_ = nullptr;
  Counter* window_pages_ = nullptr;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_MEM_READAHEAD_H_

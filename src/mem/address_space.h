// VMM guest-memory address space: layered mmap regions + per-page install state.
//
// Models the guest-physical address space that the VMM hands to KVM. FaaSnap's
// hierarchical overlapping mapping (paper Figure 4) is expressed directly: an
// anonymous base layer for the whole space, memory-file regions MAP_FIXED'd over
// it, and loading-set-file regions MAP_FIXED'd over those. Map() applies overlay
// semantics — later calls override earlier ones where they overlap — and counts
// calls so setup cost reflects region-count optimizations (section 4.6).
//
// Per-page install state tracks whether an access faults at all:
//   kNotPresent  — first access faults (class depends on the backing),
//   kSoftPresent — host PTE exists (UFFDIO_COPY install) but the first guest access
//                  still takes one cheap guest-dimension fault,
//   kPresent     — access is free.

#ifndef FAASNAP_SRC_MEM_ADDRESS_SPACE_H_
#define FAASNAP_SRC_MEM_ADDRESS_SPACE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/page_range.h"
#include "src/common/units.h"
#include "src/common/status.h"
#include "src/mem/page_cache.h"

namespace faasnap {

enum class BackingKind : uint8_t {
  kUnmapped = 0,
  kAnonymous,  // zero-fill host memory
  kFile,       // file-backed (memory file or loading set file)
};

// Resolution of one guest page to its backing.
struct PageBacking {
  BackingKind kind = BackingKind::kUnmapped;
  FileId file = kInvalidFileId;
  PageIndex file_page = 0;  // page offset within the backing file

  bool operator==(const PageBacking&) const = default;
};

// One mmap call: map `guest` pages to anonymous memory or to `file` starting at
// file page `file_start` (guest.first -> file_start, guest.first+1 -> file_start+1, ...).
struct MappingRequest {
  PageRange guest;
  BackingKind kind = BackingKind::kAnonymous;
  FileId file = kInvalidFileId;
  PageIndex file_start = 0;
};

enum class PageInstallState : uint8_t { kNotPresent = 0, kSoftPresent = 1, kPresent = 2 };

// Lifecycle of one 2 MiB-aligned huge region (huge-page fault-path lever):
//   kNone      — ordinary 4 KiB region,
//   kEligible  — dense enough (per the loading set) to be mapped huge; the first
//                fault installs the whole region,
//   kInstalled — one huge fault installed every page,
//   kSplit     — copy-on-touch fallback: the region was sparse or partially
//                backed, so it was split back to 4 KiB mappings (charged once).
enum class HugeRegionState : uint8_t { kNone = 0, kEligible, kInstalled, kSplit };

class AddressSpace {
 public:
  explicit AddressSpace(PageCount total_pages);

  // Applies one mmap with MAP_FIXED overlay semantics. Increments mmap_call_count.
  void Map(const MappingRequest& request);

  // Backing of `page` under the current layering.
  PageBacking Resolve(PageIndex page) const;

  // The maximal run [start, end) of pages sharing one mapping with `page`
  // (same backing kind/file, file offsets advancing linearly). Range installs
  // and huge regions must not cross a run boundary.
  PageRange MappingRun(PageIndex page) const;

  PageCount total_pages() const { return total_pages_; }
  uint64_t mmap_call_count() const { return mmap_call_count_; }

  // Install-state tracking (the host page table for this VM).
  PageInstallState install_state(PageIndex page) const {
    return static_cast<PageInstallState>(install_[page]);
  }
  void SetInstallState(PageIndex page, PageInstallState s);
  // Range form: one pass over the run with a single resident-count adjustment,
  // so batched installs are O(runs) rather than per-page bookkeeping.
  void SetInstallState(PageRange range, PageInstallState s);

  // True iff every page of `range` is in state `s`.
  bool AllInState(PageRange range, PageInstallState s) const;

  // Huge-region tracking (fault-path lever). Regions are `region_pages`-aligned
  // windows of the guest space; only regions explicitly marked eligible ever
  // leave kNone. Configure before marking; reconfiguring clears all marks.
  void ConfigureHugeRegions(PageCount region_pages);
  void MarkHugeEligible(PageIndex region_start);
  HugeRegionState huge_region_state(PageIndex page) const;
  void SetHugeRegionState(PageIndex page, HugeRegionState s);
  // The huge region containing `page`, clamped to the guest size.
  PageRange HugeRegionOf(PageIndex page) const;
  PageCount huge_region_pages() const { return huge_region_pages_; }

  // Number of installed pages (kSoftPresent or kPresent): the VMM's RSS as seen by
  // the daemon's procfs polling during the record phase (section 5).
  PageCount resident_pages() const { return resident_pages_; }

  // Present pages backed by anonymous memory (memory-footprint accounting, 7.3).
  PageCount resident_anonymous_pages() const;

  // Pages whose contents were copied into anonymous memory by UFFDIO_COPY (REAP's
  // installs): charged as anonymous even though the mapping is file-backed.
  void NoteAnonCopies(uint64_t pages) { anon_copied_pages_ += PageCount::FromPages(pages); }
  PageCount anon_copied_pages() const { return anon_copied_pages_; }

 private:
  // Raw page-index bound for the interval arithmetic below.
  uint64_t limit() const { return total_pages_.value(); }

  PageCount total_pages_;
  // Flattened interval map: key = first guest page of a run; the run extends to the
  // next key (or total_pages_). Value = backing at the run start; file_page advances
  // with the offset into the run.
  std::map<PageIndex, PageBacking> regions_;
  std::vector<uint8_t> install_;
  // Huge-region states keyed by region start; absent key = kNone. Sparse: only
  // marked regions appear, so the map stays proportional to the working set.
  std::map<PageIndex, HugeRegionState> huge_regions_;
  PageCount huge_region_pages_ = PageCount::FromPages(512);
  PageCount resident_pages_;
  PageCount anon_copied_pages_;
  uint64_t mmap_call_count_ = 0;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_MEM_ADDRESS_SPACE_H_

#include "src/mem/page_cache.h"

namespace faasnap {

const PageCache::FileState* PageCache::FindFile(FileId file) const {
  auto it = files_.find(file);
  return it == files_.end() ? nullptr : &it->second;
}

PageCache::PageState PageCache::GetState(FileId file, PageIndex page) const {
  const FileState* fs = FindFile(file);
  if (fs == nullptr) {
    return PageState::kAbsent;
  }
  if (fs->present.Contains(page)) {
    return PageState::kPresent;
  }
  for (const auto& [handle, range] : fs->in_flight) {
    if (range.Contains(page)) {
      return PageState::kInFlight;
    }
  }
  return PageState::kAbsent;
}

PageCache::ReadHandle PageCache::BeginRead(FileId file, PageRange range) {
  FAASNAP_CHECK(file != kInvalidFileId);
  FAASNAP_CHECK(!range.empty());
  const ReadHandle handle = next_handle_++;
  files_[file].in_flight.emplace(handle, range);
  reads_.emplace(handle, InFlightRead{file, range, {}});
  return handle;
}

void PageCache::CompleteRead(ReadHandle handle) {
  auto it = reads_.find(handle);
  FAASNAP_CHECK(it != reads_.end());
  InFlightRead read = std::move(it->second);
  reads_.erase(it);
  FileState& fs = files_[read.file];
  fs.in_flight.erase(handle);
  fs.present.Add(read.range);
  for (EventFn& waiter : read.waiters) {
    waiter();
  }
}

void PageCache::WaitFor(FileId file, PageIndex page, EventFn done) {
  FileState& fs = files_[file];
  for (auto& [handle, range] : fs.in_flight) {
    if (range.Contains(page)) {
      reads_[handle].waiters.push_back(std::move(done));
      return;
    }
  }
  // Contract: the page must be in flight. Reaching here is a caller bug.
  FAASNAP_CHECK(false && "WaitFor on a page that is not in flight");
}

void PageCache::Insert(FileId file, PageRange range) {
  FAASNAP_CHECK(file != kInvalidFileId);
  files_[file].present.Add(range);
}

PageRangeSet PageCache::AbsentIn(FileId file, PageRange range) const {
  PageRangeSet wanted;
  wanted.Add(range);
  const FileState* fs = FindFile(file);
  if (fs == nullptr) {
    return wanted;
  }
  PageRangeSet covered = fs->present;
  for (const auto& [handle, r] : fs->in_flight) {
    covered.Add(r);
  }
  return wanted.Subtract(covered);
}

PageRangeSet PageCache::PresentPages(FileId file) const {
  const FileState* fs = FindFile(file);
  return fs == nullptr ? PageRangeSet() : fs->present;
}

void PageCache::DropAll() {
  FAASNAP_CHECK(reads_.empty() && "DropAll with reads in flight");
  files_.clear();
}

void PageCache::DropFile(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) {
    return;
  }
  FAASNAP_CHECK(it->second.in_flight.empty() && "DropFile with reads in flight");
  files_.erase(it);
}

uint64_t PageCache::present_page_count() const {
  uint64_t total = 0;
  for (const auto& [file, fs] : files_) {
    total += fs.present.page_count();
  }
  return total;
}

}  // namespace faasnap

#include "src/mem/page_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace faasnap {

const PageCache::FileState* PageCache::FindFile(FileId file) const {
  auto it = files_.find(file);
  return it == files_.end() ? nullptr : &it->second;
}

std::map<PageIndex, PageCache::InFlightSpan>::const_iterator PageCache::FirstSpanEndingAfter(
    const FileState& fs, PageIndex page) {
  // Spans are disjoint and start-keyed: the only span that can cover `page` is
  // the last one starting at or before it; later spans start after `page`.
  auto it = fs.in_flight.upper_bound(page);
  if (it != fs.in_flight.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > page) {
      return prev;
    }
  }
  return it;
}

PageCache::PageState PageCache::GetState(FileId file, PageIndex page) const {
  MutexLock lock(mu_);
  const FileState* fs = FindFile(file);
  if (fs == nullptr) {
    return PageState::kAbsent;
  }
  if (fs->present.Contains(page)) {
    return PageState::kPresent;
  }
  auto it = FirstSpanEndingAfter(*fs, page);
  if (it != fs->in_flight.end() && it->first <= page) {
    return PageState::kInFlight;
  }
  return PageState::kAbsent;
}

PageCache::ReadHandle PageCache::BeginRead(FileId file, PageRange range) {
  FAASNAP_CHECK(file != kInvalidFileId);
  FAASNAP_CHECK(!range.empty());
  MutexLock lock(mu_);
  const ReadHandle handle = next_handle_++;
  FileState& fs = files_[file];
  // The disjointness invariant the interval index relies on: callers only read
  // pages that are neither present nor already in flight.
  auto overlap = FirstSpanEndingAfter(fs, range.first);
  FAASNAP_CHECK((overlap == fs.in_flight.end() || overlap->first >= range.end()) &&
                "BeginRead overlapping an in-flight read");
  fs.in_flight.emplace(range.first, InFlightSpan{range.end(), handle});
  reads_.emplace(handle, InFlightRead{file, range, {}});
  if (reads_begun_ != nullptr) {
    reads_begun_->Add(1);
    read_pages_->Add(static_cast<int64_t>(range.count));
  }
  return handle;
}

PageCache::InFlightRead PageCache::TakeRead(ReadHandle handle) {
  auto it = reads_.find(handle);
  FAASNAP_CHECK(it != reads_.end());
  InFlightRead read = std::move(it->second);
  reads_.erase(it);
  files_[read.file].in_flight.erase(read.range.first);
  return read;
}

void PageCache::CompleteRead(ReadHandle handle) {
  std::vector<Waiter> waiters;
  {
    MutexLock lock(mu_);
    InFlightRead read = TakeRead(handle);
    FileState& fs = files_[read.file];
    const uint64_t before = fs.present.page_count();
    fs.present.Add(read.range);
    NotePresentDelta(fs.present.page_count() - before);
    waiters = std::move(read.waiters);
  }
  // Waiters run unlocked: a woken faulter may re-enter the cache immediately.
  const Status ok = OkStatus();
  for (Waiter& waiter : waiters) {
    waiter(ok);
  }
}

void PageCache::FailRead(ReadHandle handle, const Status& status) {
  FAASNAP_CHECK(!status.ok());
  std::vector<Waiter> waiters;
  {
    MutexLock lock(mu_);
    InFlightRead read = TakeRead(handle);
    if (metrics_ != nullptr) {
      if (failed_reads_ == nullptr) {
        failed_reads_ = metrics_->GetCounter("page_cache.failed_reads");
      }
      failed_reads_->Add(1);
    }
    waiters = std::move(read.waiters);
  }
  // Waiters run unlocked (see CompleteRead).
  for (Waiter& waiter : waiters) {
    waiter(status);
  }
}

void PageCache::WaitFor(FileId file, PageIndex page, Waiter done) {
  MutexLock lock(mu_);
  FileState& fs = files_[file];
  auto it = FirstSpanEndingAfter(fs, page);
  if (it != fs.in_flight.end() && it->first <= page) {
    if (waiters_ != nullptr) {
      waiters_->Add(1);
    }
    reads_[it->second.handle].waiters.push_back(std::move(done));
    return;
  }
  // Contract: the page must be in flight. Reaching here is a caller bug.
  FAASNAP_CHECK(false && "WaitFor on a page that is not in flight");
}

void PageCache::Insert(FileId file, PageRange range) {
  FAASNAP_CHECK(file != kInvalidFileId);
  MutexLock lock(mu_);
  FileState& fs = files_[file];
  const uint64_t before = fs.present.page_count();
  fs.present.Add(range);
  const uint64_t added = fs.present.page_count() - before;
  NotePresentDelta(added);
  if (inserted_pages_ != nullptr) {
    inserted_pages_->Add(static_cast<int64_t>(added));
  }
}

PageRangeSet PageCache::AbsentIn(FileId file, PageRange range) const {
  PageRangeSet out;
  if (range.empty()) {
    return out;
  }
  MutexLock lock(mu_);
  const FileState* fs = FindFile(file);
  if (fs == nullptr) {
    out.Add(range);
    return out;
  }
  // Sweep the window against the two coverage sources without materializing
  // their union: both are sorted and internally disjoint, so one forward pass
  // over each suffices.
  const std::vector<PageRange>& present = fs->present.ranges();
  auto pit = std::lower_bound(present.begin(), present.end(), range.first,
                              [](const PageRange& r, PageIndex v) { return r.end() <= v; });
  auto fit = FirstSpanEndingAfter(*fs, range.first);
  PageIndex cursor = range.first;
  const PageIndex window_end = range.end();
  while (cursor < window_end) {
    while (pit != present.end() && pit->end() <= cursor) {
      ++pit;
    }
    while (fit != fs->in_flight.end() && fit->second.end <= cursor) {
      ++fit;
    }
    PageIndex covered_until = cursor;
    if (pit != present.end() && pit->first <= cursor) {
      covered_until = std::max(covered_until, pit->end());
    }
    if (fit != fs->in_flight.end() && fit->first <= cursor) {
      covered_until = std::max(covered_until, fit->second.end);
    }
    if (covered_until > cursor) {
      cursor = covered_until;
      continue;
    }
    // Absent from `cursor` to the next covering interval (or window end).
    PageIndex next_covered = window_end;
    if (pit != present.end()) {
      next_covered = std::min(next_covered, pit->first);
    }
    if (fit != fs->in_flight.end()) {
      next_covered = std::min(next_covered, fit->first);
    }
    out.Add(cursor, next_covered - cursor);
    cursor = next_covered;
  }
  return out;
}

bool PageCache::AllPresent(FileId file, PageRange range) const {
  if (range.empty()) {
    return true;
  }
  MutexLock lock(mu_);
  const FileState* fs = FindFile(file);
  return fs != nullptr && fs->present.ContainsRange(range);
}

PageRange PageCache::InFlightSpanCovering(FileId file, PageIndex page) const {
  MutexLock lock(mu_);
  const FileState* fs = FindFile(file);
  if (fs == nullptr) {
    return PageRange{page, 0};
  }
  auto it = FirstSpanEndingAfter(*fs, page);
  if (it != fs->in_flight.end() && it->first <= page) {
    return PageRange{it->first, it->second.end - it->first};
  }
  return PageRange{page, 0};
}

PageRange PageCache::PresentRunAround(FileId file, PageIndex page, uint64_t max_before,
                                      uint64_t max_after) const {
  MutexLock lock(mu_);
  const FileState* fs = FindFile(file);
  if (fs == nullptr) {
    return PageRange{page, 0};
  }
  // The present set's ranges are sorted and disjoint: the only candidate is the
  // last range starting at or before `page`.
  const std::vector<PageRange>& runs = fs->present.ranges();
  auto it = std::upper_bound(runs.begin(), runs.end(), page,
                             [](PageIndex v, const PageRange& r) { return v < r.first; });
  if (it == runs.begin()) {
    return PageRange{page, 0};
  }
  --it;
  if (!it->Contains(page)) {
    return PageRange{page, 0};
  }
  const PageIndex lo = std::max(it->first, page >= max_before ? page - max_before : 0);
  const PageIndex hi = std::min(it->end(), page + max_after + 1);
  return PageRange{lo, hi - lo};
}

PageRangeSet PageCache::PresentPages(FileId file) const {
  MutexLock lock(mu_);
  const FileState* fs = FindFile(file);
  return fs == nullptr ? PageRangeSet() : fs->present;
}

void PageCache::DropAll() {
  MutexLock lock(mu_);
  FAASNAP_CHECK(reads_.empty() && "DropAll with reads in flight");
  files_.clear();
  NotePresentDelta(-static_cast<int64_t>(present_total_));
}

void PageCache::DropFile(FileId file) {
  MutexLock lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return;
  }
  FAASNAP_CHECK(it->second.in_flight.empty() && "DropFile with reads in flight");
  NotePresentDelta(-static_cast<int64_t>(it->second.present.page_count()));
  files_.erase(it);
}

uint64_t PageCache::present_page_count() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [file, fs] : files_) {
    total += fs.present.page_count();
  }
  return total;
}

void PageCache::NotePresentDelta(int64_t delta) {
  present_total_ = static_cast<uint64_t>(static_cast<int64_t>(present_total_) + delta);
  if (present_pages_gauge_ != nullptr) {
    present_pages_gauge_->Set(static_cast<double>(present_total_));
  }
}

void PageCache::set_observability(MetricsRegistry* metrics) {
  MutexLock lock(mu_);
  metrics_ = metrics;
  failed_reads_ = nullptr;  // re-resolved lazily on the first failure
  if (metrics == nullptr) {
    reads_begun_ = nullptr;
    read_pages_ = nullptr;
    inserted_pages_ = nullptr;
    waiters_ = nullptr;
    present_pages_gauge_ = nullptr;
    return;
  }
  reads_begun_ = metrics->GetCounter("page_cache.reads_begun");
  read_pages_ = metrics->GetCounter("page_cache.read_pages");
  inserted_pages_ = metrics->GetCounter("page_cache.inserted_pages");
  waiters_ = metrics->GetCounter("page_cache.waiters");
  present_pages_gauge_ = metrics->GetGauge("page_cache.present_pages");
  present_pages_gauge_->Set(static_cast<double>(present_total_));
}

}  // namespace faasnap

// Snapshot file formats.
//
// A Firecracker snapshot consists of a VM state file (vCPU + device state) and a
// memory file that is a full copy of guest physical memory (paper section 2.4).
// On top of those, REAP adds a compact working set file (faulted pages + contents,
// in access order), and FaaSnap adds a loading set file (non-zero working-set
// regions, sorted by (group, address), read sequentially by the loader —
// sections 4.6-4.7).
//
// In the simulation, file *contents* reduce to the one property paging depends on:
// whether each page is zero. The SnapshotStore assigns FileIds and tracks sizes so
// the FaultEngine can bound readahead and the metrics can report fetch sizes.

#ifndef FAASNAP_SRC_SNAPSHOT_SNAPSHOT_FILES_H_
#define FAASNAP_SRC_SNAPSHOT_SNAPSHOT_FILES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/file_id.h"
#include "src/common/page_range.h"
#include "src/common/status.h"

namespace faasnap {

class FaultInjector;

// Registry of files living on the snapshot storage device. Owns FileId assignment;
// ids are never reused within a store.
//
// Every file carries a metadata checksum stamped at registration (mirroring the
// FNV-1a trailer of the on-disk manifest formats in snapshot/serialization).
// Validate/Open are the Status-returning entry points restore paths use before
// trusting a file; size_pages/name remain CHECK-on-bad-id accessors for callers
// that hold an id they registered themselves.
class SnapshotStore {
 public:
  FileId Register(std::string name, PageCount size);

  // Grows a registered file (loading-set files are written incrementally).
  // Re-stamps the checksum (an honest writer updates the trailer with the data).
  void Resize(FileId id, PageCount size);

  PageCount size_pages(FileId id) const;
  const std::string& name(FileId id) const;
  bool Contains(FileId id) const;

  // Integrity check: NOT_FOUND for an unknown id, IO_ERROR ("checksum
  // mismatch") for a file whose stored checksum no longer matches its metadata
  // (truncation, torn write, injected corruption). OK otherwise.
  Status Validate(FileId id) const;

  // By-name lookup plus Validate: the Status-returning alternative to handing
  // out sizes for unvalidated files.
  Result<FileId> Open(const std::string& name) const;

  // Test hook: makes `id` fail Validate, as if the file were truncated.
  void CorruptForTesting(FileId id);

  // Attaches deterministic fault injection: files registered from now on may be
  // marked corrupt (decided per file id by the injector). Null detaches.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // Adapter for FaultEngine's file_size_pages hook.
  std::function<PageCount(FileId)> SizeFn() const;

 private:
  struct Entry {
    std::string name;
    PageCount size;
    uint64_t checksum = 0;
    bool corrupt = false;  // injected or test-forced truncation/corruption
  };
  const Entry& Get(FileId id) const;
  static uint64_t ChecksumOf(const Entry& entry);

  std::vector<Entry> entries_;  // index = id - 1
  FaultInjector* injector_ = nullptr;
};

// The guest memory file: full copy of guest physical memory, with the zero/non-zero
// page map the per-region mapping technique depends on (section 4.5).
struct MemoryFile {
  FileId id = kInvalidFileId;
  PageCount total_pages;
  PageRangeSet nonzero;

  bool IsZero(PageIndex page) const { return !nonzero.Contains(page); }
  // Consecutive zero pages merged into zero regions (the post-invocation scan of
  // section 4.5). Equivalent to the complement of `nonzero`.
  PageRangeSet ZeroRegions() const { return nonzero.ComplementWithin(total_pages); }
};

// REAP's working set file: the faulted guest pages of the record invocation, in
// fault order, stored compactly so the whole set is fetched in one batch read.
struct ReapWorkingSetFile {
  FileId id = kInvalidFileId;
  std::vector<PageIndex> guest_pages;  // record-phase fault order

  PageCount size_pages() const { return PageCount::FromPages(guest_pages.size()); }
};

// Working set groups from the record phase (section 4.3): group g holds the pages
// that became resident in the g-th mincore scan (~1024 pages per group).
struct WorkingSetGroups {
  std::vector<PageRangeSet> groups;

  PageCount total_pages() const;
  // Union of all groups.
  PageRangeSet AllPages() const;
  // Lowest group index containing any page of `range`, or groups.size() if none
  // (the paper assigns a region the lowest group number of any page in it).
  uint32_t LowestGroupFor(const PageRange& range) const;
};

// One region of the loading set file: `guest` pages stored at file page
// `file_start`, prefetched in group order.
struct LoadingRegion {
  PageRange guest;
  uint32_t group = 0;
  PageIndex file_start = 0;

  bool operator==(const LoadingRegion&) const = default;
};

// FaaSnap's loading set file (section 4.7): regions sorted by (group, address);
// region file offsets are contiguous in that order so the loader's sequential scan
// of the file follows approximate access order.
struct LoadingSetFile {
  FileId id = kInvalidFileId;
  std::vector<LoadingRegion> regions;
  PageCount total_pages;

  // All guest pages covered by the loading set.
  PageRangeSet GuestPages() const;
};

// Everything restorable for one function.
struct Snapshot {
  std::string function_name;
  PageCount guest_mem_pages;
  FileId vmstate_id = kInvalidFileId;
  MemoryFile memory;
  // Populated by the respective record paths; absent pieces stay empty/invalid.
  ReapWorkingSetFile reap_ws;
  WorkingSetGroups ws_groups;
  LoadingSetFile loading_set;
};

}  // namespace faasnap

#endif  // FAASNAP_SRC_SNAPSHOT_SNAPSHOT_FILES_H_

#include "src/snapshot/snapshot_files.h"

#include <algorithm>

namespace faasnap {

FileId SnapshotStore::Register(std::string name, uint64_t size_pages) {
  entries_.push_back(Entry{std::move(name), size_pages});
  return static_cast<FileId>(entries_.size());
}

const SnapshotStore::Entry& SnapshotStore::Get(FileId id) const {
  FAASNAP_CHECK(id != kInvalidFileId && id <= entries_.size());
  return entries_[id - 1];
}

void SnapshotStore::Resize(FileId id, uint64_t size_pages) {
  FAASNAP_CHECK(id != kInvalidFileId && id <= entries_.size());
  entries_[id - 1].size_pages = size_pages;
}

uint64_t SnapshotStore::size_pages(FileId id) const { return Get(id).size_pages; }

const std::string& SnapshotStore::name(FileId id) const { return Get(id).name; }

bool SnapshotStore::Contains(FileId id) const {
  return id != kInvalidFileId && id <= entries_.size();
}

std::function<uint64_t(FileId)> SnapshotStore::SizeFn() const {
  return [this](FileId id) { return size_pages(id); };
}

uint64_t WorkingSetGroups::total_pages() const {
  uint64_t total = 0;
  for (const PageRangeSet& g : groups) {
    total += g.page_count();
  }
  return total;
}

PageRangeSet WorkingSetGroups::AllPages() const {
  PageRangeSet all;
  for (const PageRangeSet& g : groups) {
    all.UnionInPlace(g);
  }
  return all;
}

uint32_t WorkingSetGroups::LowestGroupFor(const PageRange& range) const {
  for (uint32_t g = 0; g < groups.size(); ++g) {
    if (groups[g].Overlaps(range)) {
      return g;
    }
  }
  return static_cast<uint32_t>(groups.size());
}

PageRangeSet LoadingSetFile::GuestPages() const {
  PageRangeSet all;
  for (const LoadingRegion& r : regions) {
    all.Add(r.guest);
  }
  return all;
}

}  // namespace faasnap

#include "src/snapshot/snapshot_files.h"

#include <algorithm>

#include "src/chaos/fault_injector.h"
#include "src/snapshot/serialization.h"

namespace faasnap {

uint64_t SnapshotStore::ChecksumOf(const Entry& entry) {
  // FNV-1a over the metadata the restore path depends on (the simulation's
  // stand-in for hashing the file body): name bytes, then the size.
  uint64_t sum = Fnv1a64(reinterpret_cast<const uint8_t*>(entry.name.data()),
                         entry.name.size());
  const uint64_t size = entry.size.value();
  sum ^= Fnv1a64(reinterpret_cast<const uint8_t*>(&size), sizeof(size));
  return sum;
}

FileId SnapshotStore::Register(std::string name, PageCount size) {
  Entry entry{std::move(name), size};
  entry.checksum = ChecksumOf(entry);
  const FileId id = static_cast<FileId>(entries_.size() + 1);
  if (injector_ != nullptr && injector_->CorruptFile(id)) {
    entry.corrupt = true;
  }
  entries_.push_back(std::move(entry));
  return id;
}

const SnapshotStore::Entry& SnapshotStore::Get(FileId id) const {
  FAASNAP_CHECK(id != kInvalidFileId && id <= entries_.size());
  return entries_[id - 1];
}

void SnapshotStore::Resize(FileId id, PageCount size) {
  FAASNAP_CHECK(id != kInvalidFileId && id <= entries_.size());
  Entry& entry = entries_[id - 1];
  entry.size = size;
  entry.checksum = ChecksumOf(entry);
}

Status SnapshotStore::Validate(FileId id) const {
  if (!Contains(id)) {
    return NotFoundError("unknown snapshot file id " + std::to_string(id));
  }
  const Entry& entry = entries_[id - 1];
  if (entry.corrupt || entry.checksum != ChecksumOf(entry)) {
    return IoError("checksum mismatch in snapshot file \"" + entry.name + "\"");
  }
  return OkStatus();
}

Result<FileId> SnapshotStore::Open(const std::string& name) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) {
      const FileId id = static_cast<FileId>(i + 1);
      RETURN_IF_ERROR(Validate(id));
      return id;
    }
  }
  return NotFoundError("no snapshot file named \"" + name + "\"");
}

void SnapshotStore::CorruptForTesting(FileId id) {
  FAASNAP_CHECK(Contains(id));
  entries_[id - 1].corrupt = true;
}

PageCount SnapshotStore::size_pages(FileId id) const { return Get(id).size; }

const std::string& SnapshotStore::name(FileId id) const { return Get(id).name; }

bool SnapshotStore::Contains(FileId id) const {
  return id != kInvalidFileId && id <= entries_.size();
}

std::function<PageCount(FileId)> SnapshotStore::SizeFn() const {
  return [this](FileId id) { return size_pages(id); };
}

PageCount WorkingSetGroups::total_pages() const {
  uint64_t total = 0;
  for (const PageRangeSet& g : groups) {
    total += g.page_count();
  }
  return PageCount::FromPages(total);
}

PageRangeSet WorkingSetGroups::AllPages() const {
  PageRangeSet all;
  for (const PageRangeSet& g : groups) {
    all.UnionInPlace(g);
  }
  return all;
}

uint32_t WorkingSetGroups::LowestGroupFor(const PageRange& range) const {
  for (uint32_t g = 0; g < groups.size(); ++g) {
    if (groups[g].Overlaps(range)) {
      return g;
    }
  }
  return static_cast<uint32_t>(groups.size());
}

PageRangeSet LoadingSetFile::GuestPages() const {
  PageRangeSet all;
  for (const LoadingRegion& r : regions) {
    all.Add(r.guest);
  }
  return all;
}

}  // namespace faasnap

// Binary (de)serialization of the FaaSnap on-disk metadata formats.
//
// A loading set file has two parts: the page payload (the loading-set pages, laid
// out by (group, address)) and a manifest recording which guest regions live at
// which file offsets. The daemon caches the manifest in memory (section 4.7); the
// native engine persists it next to the payload. The REAP working set file
// similarly pairs a page payload with a page-index manifest.
//
// Format: little-endian, fixed 16-byte header {magic, version, count, reserved},
// then fixed-width records, then a FNV-1a checksum of everything before it.

#ifndef FAASNAP_SRC_SNAPSHOT_SERIALIZATION_H_
#define FAASNAP_SRC_SNAPSHOT_SERIALIZATION_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/snapshot/snapshot_files.h"

namespace faasnap {

// Serialized manifest of a loading set file (regions only; id/total_pages are
// derivable). Round-trips through DecodeLoadingSetManifest.
std::vector<uint8_t> EncodeLoadingSetManifest(const LoadingSetFile& file);

// Parses a manifest blob. Validates magic, version, record bounds, and checksum;
// returns the regions plus recomputed total_pages.
Result<LoadingSetFile> DecodeLoadingSetManifest(const std::vector<uint8_t>& blob);

// Serialized manifest of a REAP working set file (the fault-ordered page list).
std::vector<uint8_t> EncodeReapManifest(const ReapWorkingSetFile& file);
Result<ReapWorkingSetFile> DecodeReapManifest(const std::vector<uint8_t>& blob);

// FNV-1a 64-bit hash, exposed for tests.
uint64_t Fnv1a64(const uint8_t* data, size_t size);

}  // namespace faasnap

#endif  // FAASNAP_SRC_SNAPSHOT_SERIALIZATION_H_

#include "src/snapshot/serialization.h"

#include <cstring>

namespace faasnap {

namespace {

constexpr uint64_t kLoadingSetMagic = 0x46534e41'4c534554ull;  // "FSNALSET"
constexpr uint64_t kReapMagic = 0x46534e41'52454150ull;        // "FSNAREAP"
constexpr uint32_t kFormatVersion = 1;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& blob) : data_(blob) {}

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
};

void AppendChecksum(std::vector<uint8_t>* out) {
  const uint64_t sum = Fnv1a64(out->data(), out->size());
  PutU64(out, sum);
}

Status VerifyChecksum(const std::vector<uint8_t>& blob) {
  if (blob.size() < 8) {
    return InvalidArgumentError("blob too small for checksum");
  }
  const size_t body = blob.size() - 8;
  uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<uint64_t>(blob[body + i]) << (8 * i);
  }
  if (Fnv1a64(blob.data(), body) != stored) {
    return InvalidArgumentError("checksum mismatch");
  }
  return OkStatus();
}

}  // namespace

uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::vector<uint8_t> EncodeLoadingSetManifest(const LoadingSetFile& file) {
  std::vector<uint8_t> out;
  PutU64(&out, kLoadingSetMagic);
  PutU32(&out, kFormatVersion);
  PutU32(&out, static_cast<uint32_t>(file.regions.size()));
  for (const LoadingRegion& r : file.regions) {
    PutU64(&out, r.guest.first);
    PutU64(&out, r.guest.count);
    PutU32(&out, r.group);
    PutU64(&out, r.file_start);
  }
  AppendChecksum(&out);
  return out;
}

Result<LoadingSetFile> DecodeLoadingSetManifest(const std::vector<uint8_t>& blob) {
  RETURN_IF_ERROR(VerifyChecksum(blob));
  Reader reader(blob);
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t count = 0;
  if (!reader.ReadU64(&magic) || !reader.ReadU32(&version) || !reader.ReadU32(&count)) {
    return InvalidArgumentError("truncated header");
  }
  if (magic != kLoadingSetMagic) {
    return InvalidArgumentError("bad magic for loading set manifest");
  }
  if (version != kFormatVersion) {
    return UnimplementedError("unsupported loading set manifest version");
  }
  LoadingSetFile file;
  file.regions.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    LoadingRegion r;
    uint64_t count64 = 0;
    if (!reader.ReadU64(&r.guest.first) || !reader.ReadU64(&count64) ||
        !reader.ReadU32(&r.group) || !reader.ReadU64(&r.file_start)) {
      return InvalidArgumentError("truncated region record");
    }
    r.guest.count = count64;
    if (r.guest.empty()) {
      return InvalidArgumentError("empty region in manifest");
    }
    file.total_pages += PageCount::FromPages(r.guest.count);
    file.regions.push_back(r);
  }
  return file;
}

std::vector<uint8_t> EncodeReapManifest(const ReapWorkingSetFile& file) {
  std::vector<uint8_t> out;
  PutU64(&out, kReapMagic);
  PutU32(&out, kFormatVersion);
  PutU32(&out, static_cast<uint32_t>(file.guest_pages.size()));
  for (PageIndex p : file.guest_pages) {
    PutU64(&out, p);
  }
  AppendChecksum(&out);
  return out;
}

Result<ReapWorkingSetFile> DecodeReapManifest(const std::vector<uint8_t>& blob) {
  RETURN_IF_ERROR(VerifyChecksum(blob));
  Reader reader(blob);
  uint64_t magic = 0;
  uint32_t version = 0;
  uint32_t count = 0;
  if (!reader.ReadU64(&magic) || !reader.ReadU32(&version) || !reader.ReadU32(&count)) {
    return InvalidArgumentError("truncated header");
  }
  if (magic != kReapMagic) {
    return InvalidArgumentError("bad magic for REAP manifest");
  }
  if (version != kFormatVersion) {
    return UnimplementedError("unsupported REAP manifest version");
  }
  ReapWorkingSetFile file;
  file.guest_pages.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PageIndex p = 0;
    if (!reader.ReadU64(&p)) {
      return InvalidArgumentError("truncated page record");
    }
    file.guest_pages.push_back(p);
  }
  return file;
}

}  // namespace faasnap

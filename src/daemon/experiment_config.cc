#include "src/daemon/experiment_config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/workloads/function_spec.h"

namespace faasnap {

namespace {

Result<RestoreMode> ModeFromName(const std::string& name) {
  for (RestoreMode mode :
       {RestoreMode::kWarm, RestoreMode::kColdBoot, RestoreMode::kFirecracker,
        RestoreMode::kCached, RestoreMode::kReap, RestoreMode::kFaasnapConcurrentOnly,
        RestoreMode::kFaasnapPerRegion, RestoreMode::kFaasnap}) {
    if (name == RestoreModeName(mode)) {
      return mode;
    }
  }
  return InvalidArgumentError("unknown system: " + name);
}

Result<TestInputSpec> InputFromString(const std::string& text) {
  TestInputSpec spec;
  spec.label = text;
  if (text == "A" || text == "a") {
    spec.kind = TestInputSpec::Kind::kInputA;
    return spec;
  }
  if (text == "B" || text == "b") {
    spec.kind = TestInputSpec::Kind::kInputB;
    return spec;
  }
  // "0.5x", "2x", "4x": a Figure 8 ratio relative to input A.
  if (!text.empty() && (text.back() == 'x' || text.back() == 'X')) {
    const std::string number = text.substr(0, text.size() - 1);
    char* end = nullptr;
    const double ratio = std::strtod(number.c_str(), &end);
    if (end != nullptr && *end == '\0' && ratio > 0) {
      spec.kind = TestInputSpec::Kind::kRatio;
      spec.ratio = ratio;
      return spec;
    }
  }
  return InvalidArgumentError("unknown input spec: " + text + " (use A, B, or e.g. 2x)");
}

}  // namespace

Result<ExperimentConfig> ParseExperimentConfig(const JsonValue& root) {
  if (!root.is_object()) {
    return InvalidArgumentError("config root must be a JSON object");
  }
  ExperimentConfig config;
  config.name = root.GetStringOr("name", config.name);

  ASSIGN_OR_RETURN(JsonValue functions, root.Get("functions"));
  if (!functions.is_array() || functions.array().empty()) {
    return InvalidArgumentError("\"functions\" must be a non-empty array");
  }
  for (const JsonValue& f : functions.array()) {
    ASSIGN_OR_RETURN(std::string name, f.AsString());
    RETURN_IF_ERROR(FindFunction(name).status());  // validate against the catalog
    config.functions.push_back(std::move(name));
  }

  if (root.Has("systems")) {
    config.systems.clear();
    ASSIGN_OR_RETURN(JsonValue systems, root.Get("systems"));
    if (!systems.is_array() || systems.array().empty()) {
      return InvalidArgumentError("\"systems\" must be a non-empty array");
    }
    for (const JsonValue& s : systems.array()) {
      ASSIGN_OR_RETURN(std::string name, s.AsString());
      ASSIGN_OR_RETURN(RestoreMode mode, ModeFromName(name));
      config.systems.push_back(mode);
    }
  }

  ASSIGN_OR_RETURN(config.record_input,
                   InputFromString(root.GetStringOr("record_input", "A")));
  if (root.Has("test_inputs")) {
    ASSIGN_OR_RETURN(JsonValue inputs, root.Get("test_inputs"));
    if (!inputs.is_array() || inputs.array().empty()) {
      return InvalidArgumentError("\"test_inputs\" must be a non-empty array");
    }
    for (const JsonValue& i : inputs.array()) {
      ASSIGN_OR_RETURN(std::string text, i.AsString());
      ASSIGN_OR_RETURN(TestInputSpec spec, InputFromString(text));
      config.test_inputs.push_back(spec);
    }
  } else {
    ASSIGN_OR_RETURN(TestInputSpec spec, InputFromString("B"));
    config.test_inputs.push_back(spec);
  }

  config.trace_out = root.GetStringOr("trace_out", "");
  config.metrics_out = root.GetStringOr("metrics_out", "");
  config.timeline_out = root.GetStringOr("timeline_out", "");
  config.timeline_window = root.GetDurationUsOr("timeline_window_us", Duration::Zero());
  config.forensics_out = root.GetStringOr("forensics_out", "");
  // A forensics output with no config block implies default-configured
  // forensics (an explicit "enabled": false still wins below).
  if (!config.forensics_out.empty() && !root.Has("forensics")) {
    config.forensics = true;
  }
  if (root.Has("forensics")) {
    ASSIGN_OR_RETURN(JsonValue forensics, root.Get("forensics"));
    if (!forensics.is_object()) {
      return InvalidArgumentError("\"forensics\" must be an object");
    }
    config.forensics = forensics.GetBoolOr("enabled", true);
    ForensicsConfig& fc = config.forensics_config;
    fc.slowest_k = static_cast<size_t>(
        forensics.GetIntOr("slowest_k", static_cast<int64_t>(fc.slowest_k)));
    fc.max_non_ok = static_cast<size_t>(
        forensics.GetIntOr("max_non_ok", static_cast<int64_t>(fc.max_non_ok)));
    fc.buffer_capacity = static_cast<size_t>(forensics.GetIntOr(
        "buffer_capacity", static_cast<int64_t>(fc.buffer_capacity)));
    if (fc.buffer_capacity == 0) {
      return InvalidArgumentError("forensics.buffer_capacity must be > 0");
    }
  }

  config.reps = static_cast<int>(root.GetIntOr("reps", config.reps));
  config.parallelism = static_cast<int>(root.GetIntOr("parallelism", config.parallelism));
  config.base_seed = static_cast<uint64_t>(root.GetIntOr("base_seed", 1));
  if (config.reps < 1 || config.parallelism < 1) {
    return InvalidArgumentError("reps and parallelism must be >= 1");
  }

  const std::string device = root.GetStringOr("device", "nvme");
  if (device == "ebs") {
    config.platform.disk = EbsIo2Profile();
  } else if (device != "nvme") {
    return InvalidArgumentError("device must be nvme or ebs");
  }
  config.platform.host_cores = static_cast<int>(root.GetIntOr("host_cores", 96));
  config.platform.ws_group_size =
      static_cast<uint64_t>(root.GetIntOr("ws_group_size", 1024));
  config.platform.loading_set.merge_gap_pages =
      root.GetPageCountOr("merge_gap_pages", PageCount::FromPages(32));
  config.platform.seed = config.base_seed;

  // Disk scheduler knobs (DiskSchedConfig). disk_queue_depth = 0 reverts to
  // issue-time FIFO claiming (the pre-scheduler baseline); disk_max_merge_kib
  // = 0 disables request coalescing. Applied to the remote tier too, below.
  DiskSchedConfig& sched = config.platform.disk.sched;
  const int64_t queue_depth = root.GetIntOr("disk_queue_depth", sched.queue_depth);
  const int64_t prefetch_slots =
      root.GetIntOr("disk_prefetch_slots", sched.prefetch_slots);
  const Duration aging =
      root.GetDurationUsOr("prefetch_aging_us", sched.prefetch_aging_bound);
  const int64_t merge_kib = root.GetIntOr(
      "disk_max_merge_kib", static_cast<int64_t>(sched.max_merge_bytes / KiB(1)));
  if (queue_depth < 0 || aging < Duration::Zero() || merge_kib < 0) {
    return InvalidArgumentError(
        "disk_queue_depth, prefetch_aging_us, and disk_max_merge_kib must be >= 0");
  }
  if (prefetch_slots < 1) {
    return InvalidArgumentError("disk_prefetch_slots must be >= 1");
  }
  sched.queue_depth = static_cast<uint32_t>(queue_depth);
  sched.prefetch_slots = static_cast<uint32_t>(prefetch_slots);
  sched.prefetch_aging_bound = aging;
  sched.max_merge_bytes = ByteCount::FromKiB(static_cast<uint64_t>(merge_kib));

  // Prefetch loader pipeline knobs (PrefetchConfig).
  PrefetchConfig& loader = config.platform.loader;
  loader.chunk_pages = root.GetPageCountOr("loader_chunk_pages", loader.chunk_pages);
  loader.pipeline_depth =
      static_cast<int>(root.GetIntOr("loader_pipeline_depth", loader.pipeline_depth));
  loader.adaptive_depth = root.GetBoolOr("loader_adaptive_depth", loader.adaptive_depth);
  loader.min_pipeline_depth =
      static_cast<int>(root.GetIntOr("loader_min_depth", loader.min_pipeline_depth));
  loader.depth_ramp_quiet =
      Duration::Micros(root.GetIntOr("loader_ramp_quiet_us", loader.depth_ramp_quiet.micros()));
  if (loader.chunk_pages.is_zero() || loader.pipeline_depth < 1 ||
      loader.min_pipeline_depth < 1 ||
      loader.min_pipeline_depth > loader.pipeline_depth) {
    return InvalidArgumentError(
        "loader_chunk_pages and loader_pipeline_depth must be >= 1, with "
        "1 <= loader_min_depth <= loader_pipeline_depth");
  }

  // Readahead stream-table bound (LRU eviction); 0 = unbounded.
  const int64_t max_streams = root.GetIntOr(
      "readahead_max_streams", static_cast<int64_t>(config.platform.readahead.max_streams));
  if (max_streams < 0) {
    return InvalidArgumentError("readahead_max_streams must be >= 0");
  }
  config.platform.readahead.max_streams = static_cast<uint64_t>(max_streams);

  // Fault-path lever knobs (FaultPathConfig); every lever defaults to off so an
  // absent block reproduces the pre-lever fault path exactly.
  if (root.Has("fault_path")) {
    ASSIGN_OR_RETURN(JsonValue fault_path, root.Get("fault_path"));
    if (!fault_path.is_object()) {
      return InvalidArgumentError("\"fault_path\" must be an object");
    }
    FaultPathConfig& fp = config.platform.fault_path;
    fp.batched_uffd_install =
        fault_path.GetBoolOr("batched_uffd_install", fp.batched_uffd_install);
    fp.huge_pages = fault_path.GetBoolOr("huge_pages", fp.huge_pages);
    fp.fault_coalescing = fault_path.GetBoolOr("fault_coalescing", fp.fault_coalescing);
    const PageCount batch_max =
        fault_path.GetPageCountOr("uffd_batch_max_pages", fp.uffd_batch_max_pages);
    const PageCount region_pages =
        fault_path.GetPageCountOr("huge_region_pages", fp.huge_region_pages);
    fp.huge_density_threshold =
        fault_path.GetNumberOr("huge_density_threshold", fp.huge_density_threshold);
    if (batch_max.is_zero() || region_pages.is_zero()) {
      return InvalidArgumentError(
          "uffd_batch_max_pages and huge_region_pages must be >= 1");
    }
    if (!(fp.huge_density_threshold > 0.0) || fp.huge_density_threshold > 1.0) {
      return InvalidArgumentError("huge_density_threshold must be in (0, 1]");
    }
    fp.uffd_batch_max_pages = batch_max;
    fp.huge_region_pages = region_pages;
  }

  if (root.Has("admission")) {
    ASSIGN_OR_RETURN(JsonValue admission, root.Get("admission"));
    if (!admission.is_object()) {
      return InvalidArgumentError("\"admission\" must be an object");
    }
    config.admission_enabled = admission.GetBoolOr("enabled", true);
    AdmissionConfig& a = config.admission;
    a.max_concurrency = static_cast<int>(
        admission.GetIntOr("max_concurrency", a.max_concurrency));
    a.queue_capacity =
        static_cast<int>(admission.GetIntOr("queue_capacity", a.queue_capacity));
    a.queue_deadline = Duration::Micros(
        admission.GetIntOr("queue_deadline_us", a.queue_deadline.micros()));
    a.memory_budget_bytes = admission.GetByteCountMiBOr("memory_budget_mib", a.memory_budget_bytes);
    a.fairness_share = admission.GetNumberOr("fairness_share", a.fairness_share);
    if (a.max_concurrency < 1 || a.queue_capacity < 0) {
      return InvalidArgumentError(
          "admission.max_concurrency must be >= 1 and queue_capacity >= 0");
    }
    if (a.fairness_share < 0.0 || a.fairness_share > 1.0) {
      return InvalidArgumentError("admission.fairness_share must be in [0, 1]");
    }
  }

  if (root.Has("chaos")) {
    ASSIGN_OR_RETURN(JsonValue chaos, root.Get("chaos"));
    if (!chaos.is_object()) {
      return InvalidArgumentError("\"chaos\" must be an object");
    }
    auto micros_or = [&chaos](const char* key, Duration fallback) {
      return Duration::Micros(
          chaos.GetIntOr(key, static_cast<int64_t>(fallback.micros())));
    };
    ChaosConfig& c = config.platform.chaos;
    c.enabled = chaos.GetBoolOr("enabled", true);
    c.seed = static_cast<uint64_t>(chaos.GetIntOr("seed", static_cast<int64_t>(c.seed)));
    c.read_error_rate = chaos.GetNumberOr("read_error_rate", c.read_error_rate);
    c.read_delay_rate = chaos.GetNumberOr("read_delay_rate", c.read_delay_rate);
    c.read_delay = micros_or("read_delay_us", c.read_delay);
    c.corrupt_file_rate = chaos.GetNumberOr("corrupt_file_rate", c.corrupt_file_rate);
    c.loader_stall_rate = chaos.GetNumberOr("loader_stall_rate", c.loader_stall_rate);
    c.loader_stall = micros_or("loader_stall_us", c.loader_stall);
    c.remote_outage_mean_gap = micros_or("remote_outage_mean_gap_us", c.remote_outage_mean_gap);
    c.remote_outage_duration = micros_or("remote_outage_duration_us", c.remote_outage_duration);
    c.spare_record_phase = chaos.GetBoolOr("spare_record_phase", c.spare_record_phase);

    StorageFaultPolicy& p = config.platform.storage_faults;
    p.max_attempts = static_cast<int>(chaos.GetIntOr("max_attempts", p.max_attempts));
    p.read_deadline = micros_or("read_deadline_us", p.read_deadline);
    p.breaker_failure_threshold = static_cast<int>(
        chaos.GetIntOr("breaker_failure_threshold", p.breaker_failure_threshold));
    p.breaker_open_for = micros_or("breaker_open_for_us", p.breaker_open_for);
    if (c.read_error_rate < 0 || c.read_error_rate > 1 || c.read_delay_rate < 0 ||
        c.read_delay_rate > 1 || c.corrupt_file_rate < 0 || c.corrupt_file_rate > 1 ||
        c.loader_stall_rate < 0 || c.loader_stall_rate > 1) {
      return InvalidArgumentError("chaos rates must be in [0, 1]");
    }
    if (p.max_attempts < 1) {
      return InvalidArgumentError("chaos max_attempts must be >= 1");
    }
    // Outage windows need a remote device to hit: provision the Figure 11
    // tiered setup (memory files on the remote/EBS tier) when outages are on.
    if (c.enabled && c.remote_outage_mean_gap > Duration::Zero() &&
        !config.platform.remote_disk.has_value()) {
      config.platform.remote_disk = EbsIo2Profile();
      config.platform.placement.memory_files = StorageTier::kRemote;
    }
  }
  if (config.platform.remote_disk.has_value()) {
    // One set of scheduler knobs governs both tiers.
    config.platform.remote_disk->sched = config.platform.disk.sched;
  }
  return config;
}

Result<ExperimentConfig> LoadExperimentConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return NotFoundError("cannot open config file: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  ASSIGN_OR_RETURN(JsonValue root, ParseJson(buffer.str()));
  return ParseExperimentConfig(root);
}

}  // namespace faasnap

// ExperimentRunner: executes a parsed ExperimentConfig and renders results —
// the counterpart of the paper artifact's `test.py` driver (Appendix A.4).
//
// For every (function, test input): one platform per repetition, one record
// phase, then one test-phase invocation per system with caches dropped between
// tests (or `parallelism` simultaneous invocations for burst configs).

#ifndef FAASNAP_SRC_DAEMON_EXPERIMENT_RUNNER_H_
#define FAASNAP_SRC_DAEMON_EXPERIMENT_RUNNER_H_

#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/daemon/experiment_config.h"
#include "src/metrics/report.h"

namespace faasnap {

struct ExperimentCell {
  std::string function;
  std::string system;
  std::string test_input;
  RunningStats total_ms;
  RunningStats setup_ms;
  RunningStats invocation_ms;
  // Outcome tallies across the cell's invocations (all kOk on fault-free runs).
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t failed = 0;
  // Arrivals the admission layer rejected or deadline-dropped (burst path with
  // an "admission" block; both shed outcomes fold into one tally here).
  int64_t shed = 0;
  // Representative last-rep detail for JSON export.
  InvocationReport sample;

  bool all_ok() const { return degraded == 0 && failed == 0 && shed == 0; }
};

struct ExperimentResults {
  std::string name;
  std::vector<ExperimentCell> cells;

  // Fixed-width table, one row per cell.
  std::string ToTable() const;
  // One JSON object per cell (array document) for downstream tooling.
  std::string ToJson() const;
};

// Runs the whole config. Errors only on configuration problems (unknown
// functions were already rejected at parse time).
Result<ExperimentResults> RunExperiment(const ExperimentConfig& config);

}  // namespace faasnap

#endif  // FAASNAP_SRC_DAEMON_EXPERIMENT_RUNNER_H_

// Experiment configs: the JSON-driven evaluation workflow of the paper's
// artifact (Appendix A.4 drives every experiment with `test.py <config>.json`;
// this repository mirrors it with `artifact_runner configs/<config>.json`).
//
// Config schema (all fields optional unless noted):
// {
//   "name": "two-input test",
//   "functions": ["json", "image", ...],        // required, catalog names
//   "systems": ["firecracker", "reap", "faasnap", "cached"],
//   "record_input": "A",                        // "A" | "B"
//   "test_inputs": ["B"],                       // "A" | "B" | a ratio like "2x"
//   "reps": 3,
//   "parallelism": 1,                           // >1 = bursty (Figure 10 style)
//   "device": "nvme",                           // "nvme" | "ebs"
//   "host_cores": 96,
//   "ws_group_size": 1024,
//   "merge_gap_pages": 32,
//   "base_seed": 1,
//   "disk_queue_depth": 32,                     // 0 = legacy issue-time FIFO claiming
//   "disk_prefetch_slots": 8,                   // device slots prefetch may hold
//   "prefetch_aging_us": 2000,                  // queued-prefetch starvation bound
//   "disk_max_merge_kib": 1024,                 // request coalescing cap; 0 disables
//   "loader_chunk_pages": 512,                  // prefetch loader read size
//   "loader_pipeline_depth": 4,                 // loader IO queue depth
//   "loader_adaptive_depth": true,              // halve depth under demand pressure
//   "loader_min_depth": 1,                      // adaptive floor
//   "loader_ramp_quiet_us": 1000,               // quiet time before depth ramps back
//   "trace_out": "trace.json",                  // Perfetto/Chrome trace export
//   "metrics_out": "metrics.json",              // metrics registry snapshot
//   "timeline_out": "run.timeline.jsonl",       // windowed metrics deltas (JSONL)
//   "timeline_window_us": 100000,               // window size; <= 0 = default 100ms
//   "forensics_out": "forensics.json",          // flight-recorder digest document
//   "forensics": {                              // tail-based invocation forensics
//     "enabled": true,                          // default true when block present
//     "slowest_k": 16,                          // keep spans of the K slowest ok
//     "max_non_ok": 1024,                       // ... and of non-ok, up to this cap
//     "buffer_capacity": 65536                  // recycling span-buffer records
//   },
//   "admission": {                              // burst-path admission control
//     "enabled": true,                          // default true when block present
//     "max_concurrency": 8,                     // in-flight invocation cap
//     "queue_capacity": 64,                     // waiters beyond this shed
//     "queue_deadline_us": 500000,              // waiters older than this shed
//     "memory_budget_mib": 0,                   // 0 disables memory admission
//     "fairness_share": 0.0                     // per-function slot share; 0 off
//   },
//   "chaos": {                                  // deterministic fault injection
//     "enabled": true,                          // default true when block present
//     "seed": 42,
//     "read_error_rate": 0.05,                  // per-read IO_ERROR probability
//     "read_delay_rate": 0.05,                  // per-read latency-spike probability
//     "read_delay_us": 2000,
//     "corrupt_file_rate": 0.1,                 // per-registered-file corruption
//     "loader_stall_rate": 0.05,                // per-chunk loader stall
//     "loader_stall_us": 1000,
//     "remote_outage_mean_gap_us": 50000,       // 0 disables outages; > 0 also
//     "remote_outage_duration_us": 5000,        //   provisions a remote tier
//     "spare_record_phase": true,
//     "max_attempts": 4,                        // storage retry/breaker policy
//     "read_deadline_us": 40000,
//     "breaker_failure_threshold": 4,
//     "breaker_open_for_us": 20000
//   }
// }
//
// When "remote_outage_mean_gap_us" > 0 the platform gets a remote (EBS) tier
// with memory files placed on it — outage windows need a remote device to hit,
// mirroring the Figure 11 tiered-storage setup.

#ifndef FAASNAP_SRC_DAEMON_EXPERIMENT_CONFIG_H_
#define FAASNAP_SRC_DAEMON_EXPERIMENT_CONFIG_H_

#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/core/platform_config.h"
#include "src/obs/flight_recorder.h"
#include "src/restore/restore_policy.h"
#include "src/runtime/admission.h"

namespace faasnap {

// One test-phase input selector: a fixed Table 2 input or a Figure 8 ratio.
struct TestInputSpec {
  enum class Kind { kInputA, kInputB, kRatio };
  Kind kind = Kind::kInputB;
  double ratio = 1.0;
  std::string label;  // as written in the config
};

struct ExperimentConfig {
  std::string name = "experiment";
  std::vector<std::string> functions;
  std::vector<RestoreMode> systems = {RestoreMode::kFirecracker, RestoreMode::kReap,
                                      RestoreMode::kFaasnap, RestoreMode::kCached};
  TestInputSpec record_input;  // defaults to input A
  std::vector<TestInputSpec> test_inputs;
  int reps = 3;
  int parallelism = 1;
  uint64_t base_seed = 1;

  // Burst-path admission control ("admission" block): with parallelism > 1,
  // the N simultaneous requests pass through an AdmissionController instead of
  // all dispatching at once — overflow and deadline-expired waiters are shed
  // with typed outcomes (the cell's shed column). Off by default: the legacy
  // unbounded burst is unchanged.
  bool admission_enabled = false;
  AdmissionConfig admission;

  // Observability outputs; empty = disabled. trace_out receives a Perfetto-
  // loadable Chrome trace (one track per repetition), metrics_out the metrics
  // registry snapshot. Both cover the whole experiment.
  std::string trace_out;
  std::string metrics_out;

  // Windowed metrics timeline: one JSONL line per virtual-time window that saw
  // activity (src/obs/metrics_timeline.h). `timeline_window_us` <= 0 keeps the
  // MetricsTimeline default.
  std::string timeline_out;
  Duration timeline_window;

  // Tail-based invocation forensics ("forensics" config block). When enabled,
  // spans record into the flight recorder's recycling buffer instead of the
  // run-wide tracer: trace_out then holds only the retained (slowest-K +
  // non-ok) invocations, and forensics_out the streaming digest document.
  bool forensics = false;
  ForensicsConfig forensics_config;
  std::string forensics_out;

  // Platform knobs resolved from the config (device, cores, FaaSnap tunables).
  PlatformConfig platform;
};

// Parses a config document. InvalidArgument on unknown functions/systems/inputs.
Result<ExperimentConfig> ParseExperimentConfig(const JsonValue& root);

// Reads and parses a config file.
Result<ExperimentConfig> LoadExperimentConfig(const std::string& path);

}  // namespace faasnap

#endif  // FAASNAP_SRC_DAEMON_EXPERIMENT_CONFIG_H_

#include "src/daemon/experiment_runner.h"

#include <cstdio>
#include <fstream>
#include <memory>

#include "src/runtime/platform.h"
#include "src/metrics/json_writer.h"
#include "src/metrics/table.h"
#include "src/obs/observability.h"
#include "src/obs/trace_export.h"

namespace faasnap {

namespace {

void TallyOutcome(ExperimentCell* cell, const InvocationReport& report) {
  switch (report.outcome) {
    case InvocationOutcome::kOk:
      cell->ok++;
      break;
    case InvocationOutcome::kDegraded:
      cell->degraded++;
      break;
    case InvocationOutcome::kFailed:
      cell->failed++;
      break;
    case InvocationOutcome::kShedQueueFull:
    case InvocationOutcome::kShedDeadline:
      cell->shed++;
      break;
  }
}

WorkloadInput ResolveInput(const TestInputSpec& spec, const FunctionSpec& function,
                           uint64_t content_seed) {
  switch (spec.kind) {
    case TestInputSpec::Kind::kInputA:
      return MakeInputA(function);
    case TestInputSpec::Kind::kInputB:
      return MakeInputB(function);
    case TestInputSpec::Kind::kRatio:
      return MakeScaledInput(function, spec.ratio, content_seed);
  }
  FAASNAP_CHECK(false);
  return MakeInputA(function);
}

}  // namespace

Result<ExperimentResults> RunExperiment(const ExperimentConfig& config) {
  ExperimentResults results;
  results.name = config.name;

  // One bundle for the whole experiment; each repetition (its own Platform and
  // t=0) records onto its own trace track (or timeline epoch).
  std::unique_ptr<Observability> obs;
  std::unique_ptr<std::ofstream> timeline_out;
  if (!config.trace_out.empty() || !config.metrics_out.empty() ||
      !config.timeline_out.empty() || !config.forensics_out.empty() || config.forensics) {
    obs = std::make_unique<Observability>();
    if (!config.timeline_out.empty()) {
      timeline_out = std::make_unique<std::ofstream>(config.timeline_out, std::ios::trunc);
      if (!timeline_out->good()) {
        return IoError("opening timeline output " + config.timeline_out);
      }
      MetricsTimelineConfig timeline_config;
      if (config.timeline_window > Duration::Zero()) {
        timeline_config.window = config.timeline_window;
      }
      std::ofstream* sink = timeline_out.get();
      obs->timeline.Configure(&obs->metrics, timeline_config,
                              [sink](const std::string& line) { *sink << line << "\n"; });
    }
    if (config.forensics) {
      obs->forensics.Configure(config.forensics_config, &obs->metrics);
    }
  }

  for (const std::string& function_name : config.functions) {
    ASSIGN_OR_RETURN(FunctionSpec spec, FindFunction(function_name));
    for (const TestInputSpec& input_spec : config.test_inputs) {
      // One cell per system; repetitions vary the platform seed.
      std::vector<ExperimentCell> row;
      for (RestoreMode system : config.systems) {
        ExperimentCell cell;
        cell.function = function_name;
        cell.system = std::string(RestoreModeName(system));
        cell.test_input = input_spec.label;
        row.push_back(std::move(cell));
      }
      for (int rep = 0; rep < config.reps; ++rep) {
        PlatformConfig platform_config = config.platform;
        platform_config.seed = config.base_seed + static_cast<uint64_t>(rep) * 7919;
        Platform platform(platform_config);
        if (obs != nullptr) {
          char track[160];
          std::snprintf(track, sizeof(track), "%s input=%s rep=%d", function_name.c_str(),
                        input_spec.label.c_str(), rep);
          if (!obs->forensics.enabled()) {
            // Under forensics the platform records into the recorder's
            // recycling buffer; the run-wide tracer stays empty (cell spans
            // aside) and per-rep tracks would never be garbage-collected.
            obs->spans.BeginTrack(track);
          }
          obs->timeline.BeginEpoch(track);
          platform.set_observability(obs.get());
        }
        TraceGenerator generator(spec, platform_config.layout);
        const WorkloadInput record_input =
            ResolveInput(config.record_input, spec, /*content_seed=*/0xA);
        FunctionSnapshot snapshot = platform.Record(generator, record_input);

        for (size_t s = 0; s < config.systems.size(); ++s) {
          platform.DropCaches();
          const WorkloadInput test_input = ResolveInput(
              input_spec, spec, 0x7E57 + static_cast<uint64_t>(rep) * 131 + s);
          // Covers every invocation of this (system, rep) cell; arg0 = system
          // index, so trace tooling can split cells apart.
          const SpanId cell_span =
              obs != nullptr ? obs->spans.Begin(platform.sim()->now(), ObsLane::kDaemon,
                                                obsname::kExperimentCell, s)
                             : kNoSpan;
          if (config.parallelism == 1) {
            InvocationReport report =
                platform.Invoke(snapshot, config.systems[s], generator, test_input);
            row[s].total_ms.Record(report.total_time().millis());
            row[s].setup_ms.Record(report.setup_time.millis());
            row[s].invocation_ms.Record(report.invocation_time.millis());
            TallyOutcome(&row[s], report);
            row[s].sample = std::move(report);
          } else if (!config.admission_enabled) {
            // Burst: N simultaneous requests; the cell aggregates per-invocation
            // times across the burst.
            int completed = 0;
            for (int i = 0; i < config.parallelism; ++i) {
              WorkloadInput per = test_input;
              if (!spec.fixed_input) {
                per.content_seed += static_cast<uint64_t>(i) * 977;
              }
              platform.InvokeAsync(snapshot, config.systems[s], generator.Generate(per),
                                   [&, s](InvocationReport report) {
                                     row[s].total_ms.Record(report.total_time().millis());
                                     row[s].setup_ms.Record(report.setup_time.millis());
                                     row[s].invocation_ms.Record(
                                         report.invocation_time.millis());
                                     TallyOutcome(&row[s], report);
                                     row[s].sample = std::move(report);
                                     ++completed;
                                   });
            }
            platform.sim()->Run();
            FAASNAP_CHECK(completed == config.parallelism);
          } else {
            // Admission-controlled burst: the N simultaneous requests enter a
            // bounded deadline queue; overflow and expired waiters resolve as
            // typed shed outcomes instead of piling onto the daemon.
            int resolved = 0;
            const ByteCount predicted_bytes =
                PagesToBytes(PageCount::FromPages(snapshot.record_touched.page_count()));
            std::unique_ptr<AdmissionController> admission;
            AdmissionController::Hooks hooks;
            hooks.run = [&, s](const AdmissionRequest& request, Duration wait) {
              (void)wait;  // queue time is visible in the report's setup span
              WorkloadInput per = test_input;
              if (!spec.fixed_input) {
                per.content_seed += request.id * 977;
              }
              platform.InvokeAsync(snapshot, config.systems[s], generator.Generate(per),
                                   [&, s, request](InvocationReport report) {
                                     row[s].total_ms.Record(report.total_time().millis());
                                     row[s].setup_ms.Record(report.setup_time.millis());
                                     row[s].invocation_ms.Record(
                                         report.invocation_time.millis());
                                     TallyOutcome(&row[s], report);
                                     row[s].sample = std::move(report);
                                     ++resolved;
                                     admission->OnComplete(request);
                                   });
            };
            hooks.shed = [&, s](const AdmissionRequest& request, InvocationOutcome outcome,
                                Duration wait) {
              (void)wait;  // ReportShed derives the wait from request.arrival
              Status reason = outcome == InvocationOutcome::kShedQueueFull
                                  ? ResourceExhaustedError("admission queue full")
                                  : DeadlineExceededError("queueing deadline exceeded");
              const InvocationReport report =
                  platform.ReportShed(snapshot, config.systems[s], request.arrival, outcome,
                                      std::move(reason));
              TallyOutcome(&row[s], report);
              ++resolved;
            };
            admission = std::make_unique<AdmissionController>(
                platform.sim(), config.admission, std::move(hooks));
            for (int i = 0; i < config.parallelism; ++i) {
              AdmissionRequest request;
              request.id = static_cast<uint64_t>(i);
              request.predicted_bytes = predicted_bytes;
              request.arrival = platform.sim()->now();
              admission->Offer(request);
            }
            platform.sim()->Run();
            FAASNAP_CHECK(resolved == config.parallelism);
          }
          if (obs != nullptr) {
            obs->spans.End(cell_span, platform.sim()->now());
          }
        }
      }
      for (ExperimentCell& cell : row) {
        results.cells.push_back(std::move(cell));
      }
    }
  }

  if (obs != nullptr) {
    if (!config.trace_out.empty()) {
      std::ofstream out(config.trace_out, std::ios::trunc);
      // Forensics replaces full tracing: export the retained (slowest-K +
      // non-ok) invocations instead of the (empty) run-wide tracer.
      out << (obs->forensics.enabled() ? obs->forensics.ExportRetainedTrace()
                                       : ExportChromeTrace(obs->spans));
      if (!out.good()) {
        return IoError("writing trace to " + config.trace_out);
      }
    }
    if (!config.metrics_out.empty()) {
      std::ofstream out(config.metrics_out, std::ios::trunc);
      out << obs->metrics.ToJson();
      if (!out.good()) {
        return IoError("writing metrics to " + config.metrics_out);
      }
    }
    if (obs->timeline.enabled()) {
      obs->timeline.Flush(SimTime());
      timeline_out->flush();
      if (!timeline_out->good()) {
        return IoError("writing timeline to " + config.timeline_out);
      }
    }
    if (!config.forensics_out.empty()) {
      std::ofstream out(config.forensics_out, std::ios::trunc);
      out << obs->forensics.SummaryToJson();
      if (!out.good()) {
        return IoError("writing forensics to " + config.forensics_out);
      }
    }
  }
  return results;
}

std::string ExperimentResults::ToTable() const {
  // The outcomes column appears only when some cell degraded or failed, so
  // fault-free output is unchanged.
  bool any_non_ok = false;
  for (const ExperimentCell& cell : cells) {
    any_non_ok = any_non_ok || !cell.all_ok();
  }
  std::vector<std::string> header = {"function", "test input", "system",
                                     "total (ms)", "setup (ms)", "invoke (ms)"};
  if (any_non_ok) {
    header.push_back("ok/deg/fail/shed");
  }
  TextTable table(header);
  for (const ExperimentCell& cell : cells) {
    std::vector<std::string> row = {
        cell.function, cell.test_input, cell.system,
        FormatCell("%.1f +- %.1f", cell.total_ms.mean(), cell.total_ms.stddev()),
        FormatCell("%.1f", cell.setup_ms.mean()),
        FormatCell("%.1f", cell.invocation_ms.mean())};
    if (any_non_ok) {
      row.push_back(std::to_string(cell.ok) + "/" + std::to_string(cell.degraded) + "/" +
                    std::to_string(cell.failed) + "/" + std::to_string(cell.shed));
    }
    table.AddRow(row);
  }
  return "# " + name + "\n\n" + table.ToString();
}

std::string ExperimentResults::ToJson() const {
  JsonWriter json;
  json.BeginObject().Field("name", name).Key("cells").BeginArray();
  for (const ExperimentCell& cell : cells) {
    json.BeginObject()
        .Field("function", cell.function)
        .Field("system", cell.system)
        .Field("test_input", cell.test_input)
        .Field("total_ms_mean", cell.total_ms.mean())
        .Field("total_ms_std", cell.total_ms.stddev())
        .Field("setup_ms_mean", cell.setup_ms.mean())
        .Field("invocation_ms_mean", cell.invocation_ms.mean());
    if (!cell.all_ok()) {
      json.Field("ok", cell.ok)
          .Field("degraded", cell.degraded)
          .Field("failed", cell.failed)
          .Field("shed", cell.shed);
    }
    json.Field("reps", cell.total_ms.count())
        .EndObject();
  }
  json.EndArray().EndObject();
  return json.TakeString();
}

}  // namespace faasnap

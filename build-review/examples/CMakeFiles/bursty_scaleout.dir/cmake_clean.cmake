file(REMOVE_RECURSE
  "CMakeFiles/bursty_scaleout.dir/bursty_scaleout.cpp.o"
  "CMakeFiles/bursty_scaleout.dir/bursty_scaleout.cpp.o.d"
  "bursty_scaleout"
  "bursty_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursty_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bursty_scaleout.
# This may be replaced when dependencies are built.

# Empty dependencies file for faasnap_cli.
# This may be replaced when dependencies are built.

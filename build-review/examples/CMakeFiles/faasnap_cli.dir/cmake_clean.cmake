file(REMOVE_RECURSE
  "CMakeFiles/faasnap_cli.dir/faasnap_cli.cpp.o"
  "CMakeFiles/faasnap_cli.dir/faasnap_cli.cpp.o.d"
  "faasnap_cli"
  "faasnap_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

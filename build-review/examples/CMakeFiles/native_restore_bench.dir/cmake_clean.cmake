file(REMOVE_RECURSE
  "CMakeFiles/native_restore_bench.dir/native_restore_bench.cpp.o"
  "CMakeFiles/native_restore_bench.dir/native_restore_bench.cpp.o.d"
  "native_restore_bench"
  "native_restore_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_restore_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for native_restore_bench.
# This may be replaced when dependencies are built.

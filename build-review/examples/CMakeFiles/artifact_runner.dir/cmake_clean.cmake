file(REMOVE_RECURSE
  "CMakeFiles/artifact_runner.dir/artifact_runner.cpp.o"
  "CMakeFiles/artifact_runner.dir/artifact_runner.cpp.o.d"
  "artifact_runner"
  "artifact_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/artifact_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for artifact_runner.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/native_demo.dir/native_demo.cpp.o"
  "CMakeFiles/native_demo.dir/native_demo.cpp.o.d"
  "native_demo"
  "native_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

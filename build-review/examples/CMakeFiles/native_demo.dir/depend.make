# Empty dependencies file for native_demo.
# This may be replaced when dependencies are built.

# Empty dependencies file for storage_router_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/storage_router_test.dir/storage_router_test.cc.o"
  "CMakeFiles/storage_router_test.dir/storage_router_test.cc.o.d"
  "storage_router_test"
  "storage_router_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for core_host_scheduler_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_host_scheduler_test.dir/core_host_scheduler_test.cc.o"
  "CMakeFiles/core_host_scheduler_test.dir/core_host_scheduler_test.cc.o.d"
  "core_host_scheduler_test"
  "core_host_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_host_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/mem_fault_engine_test.dir/mem_fault_engine_test.cc.o"
  "CMakeFiles/mem_fault_engine_test.dir/mem_fault_engine_test.cc.o.d"
  "mem_fault_engine_test"
  "mem_fault_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_fault_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

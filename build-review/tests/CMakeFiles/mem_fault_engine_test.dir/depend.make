# Empty dependencies file for mem_fault_engine_test.
# This may be replaced when dependencies are built.

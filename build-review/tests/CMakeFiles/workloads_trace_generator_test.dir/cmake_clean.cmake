file(REMOVE_RECURSE
  "CMakeFiles/workloads_trace_generator_test.dir/workloads_trace_generator_test.cc.o"
  "CMakeFiles/workloads_trace_generator_test.dir/workloads_trace_generator_test.cc.o.d"
  "workloads_trace_generator_test"
  "workloads_trace_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_trace_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

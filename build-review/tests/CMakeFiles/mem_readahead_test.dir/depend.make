# Empty dependencies file for mem_readahead_test.
# This may be replaced when dependencies are built.

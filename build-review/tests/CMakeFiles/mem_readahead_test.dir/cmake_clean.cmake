file(REMOVE_RECURSE
  "CMakeFiles/mem_readahead_test.dir/mem_readahead_test.cc.o"
  "CMakeFiles/mem_readahead_test.dir/mem_readahead_test.cc.o.d"
  "mem_readahead_test"
  "mem_readahead_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_readahead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/integration_matrix_test.dir/integration_matrix_test.cc.o"
  "CMakeFiles/integration_matrix_test.dir/integration_matrix_test.cc.o.d"
  "integration_matrix_test"
  "integration_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/core_loading_set_builder_test.dir/core_loading_set_builder_test.cc.o"
  "CMakeFiles/core_loading_set_builder_test.dir/core_loading_set_builder_test.cc.o.d"
  "core_loading_set_builder_test"
  "core_loading_set_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_loading_set_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for core_loading_set_builder_test.
# This may be replaced when dependencies are built.

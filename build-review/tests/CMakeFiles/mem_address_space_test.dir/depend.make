# Empty dependencies file for mem_address_space_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mem_address_space_test.dir/mem_address_space_test.cc.o"
  "CMakeFiles/mem_address_space_test.dir/mem_address_space_test.cc.o.d"
  "mem_address_space_test"
  "mem_address_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_address_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

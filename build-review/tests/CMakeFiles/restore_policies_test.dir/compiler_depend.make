# Empty compiler generated dependencies file for restore_policies_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/restore_policies_test.dir/restore_policies_test.cc.o"
  "CMakeFiles/restore_policies_test.dir/restore_policies_test.cc.o.d"
  "restore_policies_test"
  "restore_policies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/vm_vm_test.dir/vm_vm_test.cc.o"
  "CMakeFiles/vm_vm_test.dir/vm_vm_test.cc.o.d"
  "vm_vm_test"
  "vm_vm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for platform_lifecycle_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/platform_lifecycle_test.dir/platform_lifecycle_test.cc.o"
  "CMakeFiles/platform_lifecycle_test.dir/platform_lifecycle_test.cc.o.d"
  "platform_lifecycle_test"
  "platform_lifecycle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/core_prefetch_loader_test.dir/core_prefetch_loader_test.cc.o"
  "CMakeFiles/core_prefetch_loader_test.dir/core_prefetch_loader_test.cc.o.d"
  "core_prefetch_loader_test"
  "core_prefetch_loader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_prefetch_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for core_prefetch_loader_test.
# This may be replaced when dependencies are built.

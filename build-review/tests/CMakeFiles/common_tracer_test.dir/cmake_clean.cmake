file(REMOVE_RECURSE
  "CMakeFiles/common_tracer_test.dir/common_tracer_test.cc.o"
  "CMakeFiles/common_tracer_test.dir/common_tracer_test.cc.o.d"
  "common_tracer_test"
  "common_tracer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tracer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

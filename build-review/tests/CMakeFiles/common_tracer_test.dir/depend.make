# Empty dependencies file for common_tracer_test.
# This may be replaced when dependencies are built.

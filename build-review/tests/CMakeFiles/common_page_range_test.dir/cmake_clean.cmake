file(REMOVE_RECURSE
  "CMakeFiles/common_page_range_test.dir/common_page_range_test.cc.o"
  "CMakeFiles/common_page_range_test.dir/common_page_range_test.cc.o.d"
  "common_page_range_test"
  "common_page_range_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_page_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for common_page_range_test.
# This may be replaced when dependencies are built.

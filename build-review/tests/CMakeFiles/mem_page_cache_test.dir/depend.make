# Empty dependencies file for mem_page_cache_test.
# This may be replaced when dependencies are built.

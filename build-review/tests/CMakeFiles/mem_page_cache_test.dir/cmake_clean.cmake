file(REMOVE_RECURSE
  "CMakeFiles/mem_page_cache_test.dir/mem_page_cache_test.cc.o"
  "CMakeFiles/mem_page_cache_test.dir/mem_page_cache_test.cc.o.d"
  "mem_page_cache_test"
  "mem_page_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_page_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for restore_modes_extra_test.
# This may be replaced when dependencies are built.

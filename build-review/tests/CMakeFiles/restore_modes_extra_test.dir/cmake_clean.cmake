file(REMOVE_RECURSE
  "CMakeFiles/restore_modes_extra_test.dir/restore_modes_extra_test.cc.o"
  "CMakeFiles/restore_modes_extra_test.dir/restore_modes_extra_test.cc.o.d"
  "restore_modes_extra_test"
  "restore_modes_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_modes_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

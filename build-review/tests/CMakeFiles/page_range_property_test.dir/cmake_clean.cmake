file(REMOVE_RECURSE
  "CMakeFiles/page_range_property_test.dir/page_range_property_test.cc.o"
  "CMakeFiles/page_range_property_test.dir/page_range_property_test.cc.o.d"
  "page_range_property_test"
  "page_range_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_range_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

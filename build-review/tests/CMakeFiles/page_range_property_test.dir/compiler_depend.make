# Empty compiler generated dependencies file for page_range_property_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for snapshot_serialization_test.
# This may be replaced when dependencies are built.

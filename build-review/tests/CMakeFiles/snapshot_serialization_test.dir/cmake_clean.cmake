file(REMOVE_RECURSE
  "CMakeFiles/snapshot_serialization_test.dir/snapshot_serialization_test.cc.o"
  "CMakeFiles/snapshot_serialization_test.dir/snapshot_serialization_test.cc.o.d"
  "snapshot_serialization_test"
  "snapshot_serialization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/core_recorder_test.dir/core_recorder_test.cc.o"
  "CMakeFiles/core_recorder_test.dir/core_recorder_test.cc.o.d"
  "core_recorder_test"
  "core_recorder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_recorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/property_memory_test.dir/property_memory_test.cc.o"
  "CMakeFiles/property_memory_test.dir/property_memory_test.cc.o.d"
  "property_memory_test"
  "property_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for property_memory_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for vm_guest_layout_test.
# This may be replaced when dependencies are built.

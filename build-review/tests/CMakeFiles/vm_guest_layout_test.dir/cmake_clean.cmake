file(REMOVE_RECURSE
  "CMakeFiles/vm_guest_layout_test.dir/vm_guest_layout_test.cc.o"
  "CMakeFiles/vm_guest_layout_test.dir/vm_guest_layout_test.cc.o.d"
  "vm_guest_layout_test"
  "vm_guest_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_guest_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/storage_block_device_test.dir/storage_block_device_test.cc.o"
  "CMakeFiles/storage_block_device_test.dir/storage_block_device_test.cc.o.d"
  "storage_block_device_test"
  "storage_block_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_block_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

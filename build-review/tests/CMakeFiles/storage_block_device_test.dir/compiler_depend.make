# Empty compiler generated dependencies file for storage_block_device_test.
# This may be replaced when dependencies are built.

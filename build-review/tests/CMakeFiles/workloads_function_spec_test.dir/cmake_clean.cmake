file(REMOVE_RECURSE
  "CMakeFiles/workloads_function_spec_test.dir/workloads_function_spec_test.cc.o"
  "CMakeFiles/workloads_function_spec_test.dir/workloads_function_spec_test.cc.o.d"
  "workloads_function_spec_test"
  "workloads_function_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_function_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for workloads_function_spec_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_keepalive_test.dir/core_keepalive_test.cc.o"
  "CMakeFiles/core_keepalive_test.dir/core_keepalive_test.cc.o.d"
  "core_keepalive_test"
  "core_keepalive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_keepalive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

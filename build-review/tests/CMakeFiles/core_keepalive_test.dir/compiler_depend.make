# Empty compiler generated dependencies file for core_keepalive_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/snapshot_files_test.cc" "tests/CMakeFiles/snapshot_files_test.dir/snapshot_files_test.cc.o" "gcc" "tests/CMakeFiles/snapshot_files_test.dir/snapshot_files_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/snapshot/CMakeFiles/faasnap_snapshot.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mem/CMakeFiles/faasnap_mem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/faasnap_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/faasnap_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/faasnap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

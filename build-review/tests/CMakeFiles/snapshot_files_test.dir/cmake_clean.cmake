file(REMOVE_RECURSE
  "CMakeFiles/snapshot_files_test.dir/snapshot_files_test.cc.o"
  "CMakeFiles/snapshot_files_test.dir/snapshot_files_test.cc.o.d"
  "snapshot_files_test"
  "snapshot_files_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

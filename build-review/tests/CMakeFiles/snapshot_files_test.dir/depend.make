# Empty dependencies file for snapshot_files_test.
# This may be replaced when dependencies are built.

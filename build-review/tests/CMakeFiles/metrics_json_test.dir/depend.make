# Empty dependencies file for metrics_json_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/metrics_json_test.dir/metrics_json_test.cc.o"
  "CMakeFiles/metrics_json_test.dir/metrics_json_test.cc.o.d"
  "metrics_json_test"
  "metrics_json_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

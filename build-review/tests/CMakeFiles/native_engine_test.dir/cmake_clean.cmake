file(REMOVE_RECURSE
  "CMakeFiles/native_engine_test.dir/native_engine_test.cc.o"
  "CMakeFiles/native_engine_test.dir/native_engine_test.cc.o.d"
  "native_engine_test"
  "native_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for snapshot_security_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/snapshot_security_test.dir/snapshot_security_test.cc.o"
  "CMakeFiles/snapshot_security_test.dir/snapshot_security_test.cc.o.d"
  "snapshot_security_test"
  "snapshot_security_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

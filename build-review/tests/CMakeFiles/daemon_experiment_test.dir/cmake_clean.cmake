file(REMOVE_RECURSE
  "CMakeFiles/daemon_experiment_test.dir/daemon_experiment_test.cc.o"
  "CMakeFiles/daemon_experiment_test.dir/daemon_experiment_test.cc.o.d"
  "daemon_experiment_test"
  "daemon_experiment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daemon_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for daemon_experiment_test.
# This may be replaced when dependencies are built.

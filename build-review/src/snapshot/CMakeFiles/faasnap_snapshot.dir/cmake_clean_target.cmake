file(REMOVE_RECURSE
  "libfaasnap_snapshot.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snapshot/serialization.cc" "src/snapshot/CMakeFiles/faasnap_snapshot.dir/serialization.cc.o" "gcc" "src/snapshot/CMakeFiles/faasnap_snapshot.dir/serialization.cc.o.d"
  "/root/repo/src/snapshot/snapshot_files.cc" "src/snapshot/CMakeFiles/faasnap_snapshot.dir/snapshot_files.cc.o" "gcc" "src/snapshot/CMakeFiles/faasnap_snapshot.dir/snapshot_files.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/mem/CMakeFiles/faasnap_mem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/faasnap_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/faasnap_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/faasnap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

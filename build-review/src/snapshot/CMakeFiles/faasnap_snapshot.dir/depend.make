# Empty dependencies file for faasnap_snapshot.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/faasnap_snapshot.dir/serialization.cc.o"
  "CMakeFiles/faasnap_snapshot.dir/serialization.cc.o.d"
  "CMakeFiles/faasnap_snapshot.dir/snapshot_files.cc.o"
  "CMakeFiles/faasnap_snapshot.dir/snapshot_files.cc.o.d"
  "libfaasnap_snapshot.a"
  "libfaasnap_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

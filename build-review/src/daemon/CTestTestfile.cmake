# CMake generated Testfile for 
# Source directory: /root/repo/src/daemon
# Build directory: /root/repo/build-review/src/daemon
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

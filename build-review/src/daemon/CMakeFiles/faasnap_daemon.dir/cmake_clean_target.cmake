file(REMOVE_RECURSE
  "libfaasnap_daemon.a"
)

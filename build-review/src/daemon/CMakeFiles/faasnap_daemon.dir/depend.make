# Empty dependencies file for faasnap_daemon.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/faasnap_daemon.dir/experiment_config.cc.o"
  "CMakeFiles/faasnap_daemon.dir/experiment_config.cc.o.d"
  "CMakeFiles/faasnap_daemon.dir/experiment_runner.cc.o"
  "CMakeFiles/faasnap_daemon.dir/experiment_runner.cc.o.d"
  "libfaasnap_daemon.a"
  "libfaasnap_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

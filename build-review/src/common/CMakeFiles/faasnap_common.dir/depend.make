# Empty dependencies file for faasnap_common.
# This may be replaced when dependencies are built.

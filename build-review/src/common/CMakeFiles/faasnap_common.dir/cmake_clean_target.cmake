file(REMOVE_RECURSE
  "libfaasnap_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/faasnap_common.dir/histogram.cc.o"
  "CMakeFiles/faasnap_common.dir/histogram.cc.o.d"
  "CMakeFiles/faasnap_common.dir/json.cc.o"
  "CMakeFiles/faasnap_common.dir/json.cc.o.d"
  "CMakeFiles/faasnap_common.dir/logging.cc.o"
  "CMakeFiles/faasnap_common.dir/logging.cc.o.d"
  "CMakeFiles/faasnap_common.dir/page_range.cc.o"
  "CMakeFiles/faasnap_common.dir/page_range.cc.o.d"
  "CMakeFiles/faasnap_common.dir/status.cc.o"
  "CMakeFiles/faasnap_common.dir/status.cc.o.d"
  "CMakeFiles/faasnap_common.dir/tracer.cc.o"
  "CMakeFiles/faasnap_common.dir/tracer.cc.o.d"
  "CMakeFiles/faasnap_common.dir/units.cc.o"
  "CMakeFiles/faasnap_common.dir/units.cc.o.d"
  "libfaasnap_common.a"
  "libfaasnap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

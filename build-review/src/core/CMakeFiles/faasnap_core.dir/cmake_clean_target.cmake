file(REMOVE_RECURSE
  "libfaasnap_core.a"
)

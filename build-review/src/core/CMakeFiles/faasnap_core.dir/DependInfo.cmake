
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/host_scheduler.cc" "src/core/CMakeFiles/faasnap_core.dir/host_scheduler.cc.o" "gcc" "src/core/CMakeFiles/faasnap_core.dir/host_scheduler.cc.o.d"
  "/root/repo/src/core/keepalive.cc" "src/core/CMakeFiles/faasnap_core.dir/keepalive.cc.o" "gcc" "src/core/CMakeFiles/faasnap_core.dir/keepalive.cc.o.d"
  "/root/repo/src/core/loading_set_builder.cc" "src/core/CMakeFiles/faasnap_core.dir/loading_set_builder.cc.o" "gcc" "src/core/CMakeFiles/faasnap_core.dir/loading_set_builder.cc.o.d"
  "/root/repo/src/core/platform.cc" "src/core/CMakeFiles/faasnap_core.dir/platform.cc.o" "gcc" "src/core/CMakeFiles/faasnap_core.dir/platform.cc.o.d"
  "/root/repo/src/core/prefetch_loader.cc" "src/core/CMakeFiles/faasnap_core.dir/prefetch_loader.cc.o" "gcc" "src/core/CMakeFiles/faasnap_core.dir/prefetch_loader.cc.o.d"
  "/root/repo/src/core/recorder.cc" "src/core/CMakeFiles/faasnap_core.dir/recorder.cc.o" "gcc" "src/core/CMakeFiles/faasnap_core.dir/recorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/restore/CMakeFiles/faasnap_restore.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workloads/CMakeFiles/faasnap_workloads.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vm/CMakeFiles/faasnap_vm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/snapshot/CMakeFiles/faasnap_snapshot.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mem/CMakeFiles/faasnap_mem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/faasnap_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/faasnap_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/metrics/CMakeFiles/faasnap_metrics.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/faasnap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

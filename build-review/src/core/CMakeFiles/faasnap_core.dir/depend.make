# Empty dependencies file for faasnap_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/faasnap_core.dir/host_scheduler.cc.o"
  "CMakeFiles/faasnap_core.dir/host_scheduler.cc.o.d"
  "CMakeFiles/faasnap_core.dir/keepalive.cc.o"
  "CMakeFiles/faasnap_core.dir/keepalive.cc.o.d"
  "CMakeFiles/faasnap_core.dir/loading_set_builder.cc.o"
  "CMakeFiles/faasnap_core.dir/loading_set_builder.cc.o.d"
  "CMakeFiles/faasnap_core.dir/platform.cc.o"
  "CMakeFiles/faasnap_core.dir/platform.cc.o.d"
  "CMakeFiles/faasnap_core.dir/prefetch_loader.cc.o"
  "CMakeFiles/faasnap_core.dir/prefetch_loader.cc.o.d"
  "CMakeFiles/faasnap_core.dir/recorder.cc.o"
  "CMakeFiles/faasnap_core.dir/recorder.cc.o.d"
  "libfaasnap_core.a"
  "libfaasnap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

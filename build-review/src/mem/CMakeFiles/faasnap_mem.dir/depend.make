# Empty dependencies file for faasnap_mem.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cc" "src/mem/CMakeFiles/faasnap_mem.dir/address_space.cc.o" "gcc" "src/mem/CMakeFiles/faasnap_mem.dir/address_space.cc.o.d"
  "/root/repo/src/mem/fault_engine.cc" "src/mem/CMakeFiles/faasnap_mem.dir/fault_engine.cc.o" "gcc" "src/mem/CMakeFiles/faasnap_mem.dir/fault_engine.cc.o.d"
  "/root/repo/src/mem/fault_metrics.cc" "src/mem/CMakeFiles/faasnap_mem.dir/fault_metrics.cc.o" "gcc" "src/mem/CMakeFiles/faasnap_mem.dir/fault_metrics.cc.o.d"
  "/root/repo/src/mem/page_cache.cc" "src/mem/CMakeFiles/faasnap_mem.dir/page_cache.cc.o" "gcc" "src/mem/CMakeFiles/faasnap_mem.dir/page_cache.cc.o.d"
  "/root/repo/src/mem/readahead.cc" "src/mem/CMakeFiles/faasnap_mem.dir/readahead.cc.o" "gcc" "src/mem/CMakeFiles/faasnap_mem.dir/readahead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/faasnap_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/faasnap_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/faasnap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libfaasnap_mem.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/faasnap_mem.dir/address_space.cc.o"
  "CMakeFiles/faasnap_mem.dir/address_space.cc.o.d"
  "CMakeFiles/faasnap_mem.dir/fault_engine.cc.o"
  "CMakeFiles/faasnap_mem.dir/fault_engine.cc.o.d"
  "CMakeFiles/faasnap_mem.dir/fault_metrics.cc.o"
  "CMakeFiles/faasnap_mem.dir/fault_metrics.cc.o.d"
  "CMakeFiles/faasnap_mem.dir/page_cache.cc.o"
  "CMakeFiles/faasnap_mem.dir/page_cache.cc.o.d"
  "CMakeFiles/faasnap_mem.dir/readahead.cc.o"
  "CMakeFiles/faasnap_mem.dir/readahead.cc.o.d"
  "libfaasnap_mem.a"
  "libfaasnap_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

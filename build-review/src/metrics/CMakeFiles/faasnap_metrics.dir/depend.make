# Empty dependencies file for faasnap_metrics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfaasnap_metrics.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/faasnap_metrics.dir/json_writer.cc.o"
  "CMakeFiles/faasnap_metrics.dir/json_writer.cc.o.d"
  "CMakeFiles/faasnap_metrics.dir/report.cc.o"
  "CMakeFiles/faasnap_metrics.dir/report.cc.o.d"
  "CMakeFiles/faasnap_metrics.dir/table.cc.o"
  "CMakeFiles/faasnap_metrics.dir/table.cc.o.d"
  "libfaasnap_metrics.a"
  "libfaasnap_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/src/native
# Build directory: /root/repo/build-review/src/native
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

# Empty dependencies file for faasnap_native.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/faasnap_native.dir/mapped_file.cc.o"
  "CMakeFiles/faasnap_native.dir/mapped_file.cc.o.d"
  "CMakeFiles/faasnap_native.dir/native_snapshot.cc.o"
  "CMakeFiles/faasnap_native.dir/native_snapshot.cc.o.d"
  "CMakeFiles/faasnap_native.dir/region_mapper.cc.o"
  "CMakeFiles/faasnap_native.dir/region_mapper.cc.o.d"
  "libfaasnap_native.a"
  "libfaasnap_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfaasnap_native.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/faasnap_restore.dir/policies.cc.o"
  "CMakeFiles/faasnap_restore.dir/policies.cc.o.d"
  "libfaasnap_restore.a"
  "libfaasnap_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

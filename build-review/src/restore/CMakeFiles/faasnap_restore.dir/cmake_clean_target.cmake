file(REMOVE_RECURSE
  "libfaasnap_restore.a"
)

# Empty dependencies file for faasnap_restore.
# This may be replaced when dependencies are built.

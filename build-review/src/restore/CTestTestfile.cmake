# CMake generated Testfile for 
# Source directory: /root/repo/src/restore
# Build directory: /root/repo/build-review/src/restore
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

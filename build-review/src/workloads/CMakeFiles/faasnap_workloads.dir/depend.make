# Empty dependencies file for faasnap_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/faasnap_workloads.dir/function_spec.cc.o"
  "CMakeFiles/faasnap_workloads.dir/function_spec.cc.o.d"
  "CMakeFiles/faasnap_workloads.dir/trace_generator.cc.o"
  "CMakeFiles/faasnap_workloads.dir/trace_generator.cc.o.d"
  "libfaasnap_workloads.a"
  "libfaasnap_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

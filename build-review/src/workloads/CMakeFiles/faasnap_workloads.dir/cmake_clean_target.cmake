file(REMOVE_RECURSE
  "libfaasnap_workloads.a"
)

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("storage")
subdirs("mem")
subdirs("snapshot")
subdirs("vm")
subdirs("workloads")
subdirs("restore")
subdirs("core")
subdirs("metrics")
subdirs("daemon")
subdirs("native")

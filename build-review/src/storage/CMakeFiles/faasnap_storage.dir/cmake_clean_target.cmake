file(REMOVE_RECURSE
  "libfaasnap_storage.a"
)

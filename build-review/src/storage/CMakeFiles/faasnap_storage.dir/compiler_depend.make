# Empty compiler generated dependencies file for faasnap_storage.
# This may be replaced when dependencies are built.

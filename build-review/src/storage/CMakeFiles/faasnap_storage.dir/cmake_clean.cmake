file(REMOVE_RECURSE
  "CMakeFiles/faasnap_storage.dir/block_device.cc.o"
  "CMakeFiles/faasnap_storage.dir/block_device.cc.o.d"
  "CMakeFiles/faasnap_storage.dir/storage_router.cc.o"
  "CMakeFiles/faasnap_storage.dir/storage_router.cc.o.d"
  "libfaasnap_storage.a"
  "libfaasnap_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for faasnap_vm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/faasnap_vm.dir/guest_layout.cc.o"
  "CMakeFiles/faasnap_vm.dir/guest_layout.cc.o.d"
  "CMakeFiles/faasnap_vm.dir/trace.cc.o"
  "CMakeFiles/faasnap_vm.dir/trace.cc.o.d"
  "CMakeFiles/faasnap_vm.dir/vm.cc.o"
  "CMakeFiles/faasnap_vm.dir/vm.cc.o.d"
  "libfaasnap_vm.a"
  "libfaasnap_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfaasnap_vm.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/guest_layout.cc" "src/vm/CMakeFiles/faasnap_vm.dir/guest_layout.cc.o" "gcc" "src/vm/CMakeFiles/faasnap_vm.dir/guest_layout.cc.o.d"
  "/root/repo/src/vm/trace.cc" "src/vm/CMakeFiles/faasnap_vm.dir/trace.cc.o" "gcc" "src/vm/CMakeFiles/faasnap_vm.dir/trace.cc.o.d"
  "/root/repo/src/vm/vm.cc" "src/vm/CMakeFiles/faasnap_vm.dir/vm.cc.o" "gcc" "src/vm/CMakeFiles/faasnap_vm.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/mem/CMakeFiles/faasnap_mem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/faasnap_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/faasnap_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/faasnap_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

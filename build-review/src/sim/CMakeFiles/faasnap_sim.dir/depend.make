# Empty dependencies file for faasnap_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/faasnap_sim.dir/simulation.cc.o"
  "CMakeFiles/faasnap_sim.dir/simulation.cc.o.d"
  "libfaasnap_sim.a"
  "libfaasnap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfaasnap_sim.a"
)

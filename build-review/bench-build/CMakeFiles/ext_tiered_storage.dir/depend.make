# Empty dependencies file for ext_tiered_storage.
# This may be replaced when dependencies are built.

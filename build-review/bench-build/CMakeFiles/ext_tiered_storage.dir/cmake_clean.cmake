file(REMOVE_RECURSE
  "../bench/ext_tiered_storage"
  "../bench/ext_tiered_storage.pdb"
  "CMakeFiles/ext_tiered_storage.dir/ext_tiered_storage.cc.o"
  "CMakeFiles/ext_tiered_storage.dir/ext_tiered_storage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tiered_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/ext_host_scheduler"
  "../bench/ext_host_scheduler.pdb"
  "CMakeFiles/ext_host_scheduler.dir/ext_host_scheduler.cc.o"
  "CMakeFiles/ext_host_scheduler.dir/ext_host_scheduler.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_host_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_host_scheduler.
# This may be replaced when dependencies are built.

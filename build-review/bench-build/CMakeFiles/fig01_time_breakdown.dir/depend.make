# Empty dependencies file for fig01_time_breakdown.
# This may be replaced when dependencies are built.

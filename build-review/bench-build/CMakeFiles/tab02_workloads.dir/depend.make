# Empty dependencies file for tab02_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/tab02_workloads"
  "../bench/tab02_workloads.pdb"
  "CMakeFiles/tab02_workloads.dir/tab02_workloads.cc.o"
  "CMakeFiles/tab02_workloads.dir/tab02_workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab02_workloads.cc" "bench-build/CMakeFiles/tab02_workloads.dir/tab02_workloads.cc.o" "gcc" "bench-build/CMakeFiles/tab02_workloads.dir/tab02_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/bench-build/CMakeFiles/faasnap_bench_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/faasnap_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/restore/CMakeFiles/faasnap_restore.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workloads/CMakeFiles/faasnap_workloads.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vm/CMakeFiles/faasnap_vm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/snapshot/CMakeFiles/faasnap_snapshot.dir/DependInfo.cmake"
  "/root/repo/build-review/src/metrics/CMakeFiles/faasnap_metrics.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mem/CMakeFiles/faasnap_mem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/faasnap_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/faasnap_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/faasnap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

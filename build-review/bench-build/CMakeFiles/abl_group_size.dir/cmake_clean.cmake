file(REMOVE_RECURSE
  "../bench/abl_group_size"
  "../bench/abl_group_size.pdb"
  "CMakeFiles/abl_group_size.dir/abl_group_size.cc.o"
  "CMakeFiles/abl_group_size.dir/abl_group_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_group_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_group_size.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/abl_merge_threshold"
  "../bench/abl_merge_threshold.pdb"
  "CMakeFiles/abl_merge_threshold.dir/abl_merge_threshold.cc.o"
  "CMakeFiles/abl_merge_threshold.dir/abl_merge_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_merge_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_host_page_recording.
# This may be replaced when dependencies are built.

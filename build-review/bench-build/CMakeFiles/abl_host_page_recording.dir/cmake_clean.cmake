file(REMOVE_RECURSE
  "../bench/abl_host_page_recording"
  "../bench/abl_host_page_recording.pdb"
  "CMakeFiles/abl_host_page_recording.dir/abl_host_page_recording.cc.o"
  "CMakeFiles/abl_host_page_recording.dir/abl_host_page_recording.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_host_page_recording.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

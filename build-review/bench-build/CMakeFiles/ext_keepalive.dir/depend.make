# Empty dependencies file for ext_keepalive.
# This may be replaced when dependencies are built.

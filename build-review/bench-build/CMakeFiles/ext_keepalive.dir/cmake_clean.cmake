file(REMOVE_RECURSE
  "../bench/ext_keepalive"
  "../bench/ext_keepalive.pdb"
  "CMakeFiles/ext_keepalive.dir/ext_keepalive.cc.o"
  "CMakeFiles/ext_keepalive.dir/ext_keepalive.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_keepalive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig08_input_sensitivity.
# This may be replaced when dependencies are built.

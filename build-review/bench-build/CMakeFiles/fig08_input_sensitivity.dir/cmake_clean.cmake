file(REMOVE_RECURSE
  "../bench/fig08_input_sensitivity"
  "../bench/fig08_input_sensitivity.pdb"
  "CMakeFiles/fig08_input_sensitivity.dir/fig08_input_sensitivity.cc.o"
  "CMakeFiles/fig08_input_sensitivity.dir/fig08_input_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_input_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

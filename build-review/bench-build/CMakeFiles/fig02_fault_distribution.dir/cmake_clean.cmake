file(REMOVE_RECURSE
  "../bench/fig02_fault_distribution"
  "../bench/fig02_fault_distribution.pdb"
  "CMakeFiles/fig02_fault_distribution.dir/fig02_fault_distribution.cc.o"
  "CMakeFiles/fig02_fault_distribution.dir/fig02_fault_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_fault_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

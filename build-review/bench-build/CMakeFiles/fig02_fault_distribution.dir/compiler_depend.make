# Empty compiler generated dependencies file for fig02_fault_distribution.
# This may be replaced when dependencies are built.

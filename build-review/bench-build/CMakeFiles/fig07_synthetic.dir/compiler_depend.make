# Empty compiler generated dependencies file for fig07_synthetic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig07_synthetic"
  "../bench/fig07_synthetic.pdb"
  "CMakeFiles/fig07_synthetic.dir/fig07_synthetic.cc.o"
  "CMakeFiles/fig07_synthetic.dir/fig07_synthetic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

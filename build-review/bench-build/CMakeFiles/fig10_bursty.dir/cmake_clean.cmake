file(REMOVE_RECURSE
  "../bench/fig10_bursty"
  "../bench/fig10_bursty.pdb"
  "CMakeFiles/fig10_bursty.dir/fig10_bursty.cc.o"
  "CMakeFiles/fig10_bursty.dir/fig10_bursty.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bursty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

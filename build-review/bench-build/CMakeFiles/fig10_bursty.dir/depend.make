# Empty dependencies file for fig10_bursty.
# This may be replaced when dependencies are built.

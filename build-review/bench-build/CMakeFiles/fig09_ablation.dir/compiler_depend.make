# Empty compiler generated dependencies file for fig09_ablation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig09_ablation"
  "../bench/fig09_ablation.pdb"
  "CMakeFiles/fig09_ablation.dir/fig09_ablation.cc.o"
  "CMakeFiles/fig09_ablation.dir/fig09_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

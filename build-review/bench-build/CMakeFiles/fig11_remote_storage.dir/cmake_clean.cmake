file(REMOVE_RECURSE
  "../bench/fig11_remote_storage"
  "../bench/fig11_remote_storage.pdb"
  "CMakeFiles/fig11_remote_storage.dir/fig11_remote_storage.cc.o"
  "CMakeFiles/fig11_remote_storage.dir/fig11_remote_storage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_remote_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

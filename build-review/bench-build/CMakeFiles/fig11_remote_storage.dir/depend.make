# Empty dependencies file for fig11_remote_storage.
# This may be replaced when dependencies are built.

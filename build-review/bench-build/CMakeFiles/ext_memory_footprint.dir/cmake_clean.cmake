file(REMOVE_RECURSE
  "../bench/ext_memory_footprint"
  "../bench/ext_memory_footprint.pdb"
  "CMakeFiles/ext_memory_footprint.dir/ext_memory_footprint.cc.o"
  "CMakeFiles/ext_memory_footprint.dir/ext_memory_footprint.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_memory_footprint.
# This may be replaced when dependencies are built.

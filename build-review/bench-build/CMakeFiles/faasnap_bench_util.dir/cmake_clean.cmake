file(REMOVE_RECURSE
  "CMakeFiles/faasnap_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/faasnap_bench_util.dir/bench_util.cc.o.d"
  "libfaasnap_bench_util.a"
  "libfaasnap_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faasnap_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfaasnap_bench_util.a"
)

# Empty compiler generated dependencies file for faasnap_bench_util.
# This may be replaced when dependencies are built.

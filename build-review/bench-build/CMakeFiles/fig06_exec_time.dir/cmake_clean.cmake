file(REMOVE_RECURSE
  "../bench/fig06_exec_time"
  "../bench/fig06_exec_time.pdb"
  "CMakeFiles/fig06_exec_time.dir/fig06_exec_time.cc.o"
  "CMakeFiles/fig06_exec_time.dir/fig06_exec_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

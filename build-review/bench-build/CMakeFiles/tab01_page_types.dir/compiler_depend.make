# Empty compiler generated dependencies file for tab01_page_types.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/tab01_page_types"
  "../bench/tab01_page_types.pdb"
  "CMakeFiles/tab01_page_types.dir/tab01_page_types.cc.o"
  "CMakeFiles/tab01_page_types.dir/tab01_page_types.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_page_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/ext_storage_cost"
  "../bench/ext_storage_cost.pdb"
  "CMakeFiles/ext_storage_cost.dir/ext_storage_cost.cc.o"
  "CMakeFiles/ext_storage_cost.dir/ext_storage_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_storage_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ext_storage_cost.
# This may be replaced when dependencies are built.

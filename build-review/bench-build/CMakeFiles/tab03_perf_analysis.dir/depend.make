# Empty dependencies file for tab03_perf_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/tab03_perf_analysis"
  "../bench/tab03_perf_analysis.pdb"
  "CMakeFiles/tab03_perf_analysis.dir/tab03_perf_analysis.cc.o"
  "CMakeFiles/tab03_perf_analysis.dir/tab03_perf_analysis.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_perf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
